//! Query arrival processes for service-level (SLA/QoS) studies.
//!
//! The paper motivates CPU-based deployment with firm SLA targets for
//! user-facing inference. The examples in this workspace use a Poisson
//! arrival process plus the per-request latencies predicted by the system
//! simulators to estimate tail latency under load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inter-arrival behaviour of inference queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_qps` queries per second (exponential
    /// inter-arrival times).
    Poisson {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Deterministic arrivals exactly `1/rate_qps` apart.
    Uniform {
        /// Arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Two-state Markov-modulated Poisson process: Poisson arrivals whose
    /// rate switches between a low and a high state, with exponentially
    /// distributed dwell times in each state — the classic bursty-traffic
    /// model (request floods arrive in episodes, not as a stationary
    /// stream).
    Mmpp2 {
        /// Arrival rate while in the low state, queries per second.
        rate_low_qps: f64,
        /// Arrival rate while in the high (burst) state, queries per second.
        rate_high_qps: f64,
        /// Mean dwell time in the low state, seconds.
        mean_dwell_low_s: f64,
        /// Mean dwell time in the high state, seconds.
        mean_dwell_high_s: f64,
    },
    /// On-off modulated Poisson (a square-wave "diurnal" superposition):
    /// Poisson arrivals at `rate_on_qps` during on-windows of `on_s`
    /// seconds, silence for `off_s` seconds between them, repeating from
    /// stream start.
    OnOff {
        /// Arrival rate during on-windows, queries per second.
        rate_on_qps: f64,
        /// On-window length, seconds.
        on_s: f64,
        /// Off-window length, seconds.
        off_s: f64,
    },
    /// Two-branch hyperexponential (H2) renewal arrivals: each
    /// inter-arrival gap independently draws the fast branch (rate
    /// `rate_fast_qps`) with probability `p_fast`, else the slow branch —
    /// a heavy-tailed gap distribution (squared coefficient of variation
    /// above 1, versus exactly 1 for Poisson) that clumps arrivals harder
    /// than MMPP-2's two-rate modulation while staying memoryless between
    /// gaps (no modulation state to carry).
    HyperExp {
        /// Probability an inter-arrival gap draws the fast branch.
        p_fast: f64,
        /// Fast-branch rate in queries per second.
        rate_fast_qps: f64,
        /// Slow-branch rate in queries per second.
        rate_slow_qps: f64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate in queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Uniform { rate_qps } => rate_qps,
            ArrivalProcess::Mmpp2 {
                rate_low_qps,
                rate_high_qps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => {
                let span = mean_dwell_low_s + mean_dwell_high_s;
                (rate_low_qps * mean_dwell_low_s + rate_high_qps * mean_dwell_high_s) / span
            }
            ArrivalProcess::OnOff {
                rate_on_qps,
                on_s,
                off_s,
            } => rate_on_qps * on_s / (on_s + off_s),
            ArrivalProcess::HyperExp {
                p_fast,
                rate_fast_qps,
                rate_slow_qps,
            } => {
                // Mean gap is the probability-weighted branch means.
                let mean_gap = p_fast / rate_fast_qps + (1.0 - p_fast) / rate_slow_qps;
                1.0 / mean_gap
            }
        }
    }

    /// Short traffic-shape label for bench/report cells.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Uniform { .. } => "uniform",
            ArrivalProcess::Mmpp2 { .. } => "mmpp2",
            ArrivalProcess::OnOff { .. } => "onoff",
            ArrivalProcess::HyperExp { .. } => "hyperexp",
        }
    }

    /// Draws the next inter-arrival gap in seconds. Only defined for the
    /// memoryless (stateless) processes; the modulated shapes carry state
    /// between arrivals and must be sampled through [`ArrivalSampler`] (or
    /// [`QueryStream::generate`], which uses one internally).
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive, or on a
    /// modulated process (`Mmpp2`, `OnOff`).
    pub fn next_gap_seconds(&self, rng: &mut StdRng) -> f64 {
        let rate = self.rate_qps();
        assert!(rate > 0.0, "arrival rate must be positive");
        match *self {
            ArrivalProcess::Poisson { .. } => exp_gap(rng, rate),
            ArrivalProcess::Uniform { .. } => 1.0 / rate,
            ArrivalProcess::HyperExp {
                p_fast,
                rate_fast_qps,
                rate_slow_qps,
            } => {
                // Each gap is an independent two-branch mixture draw — no
                // state carries between arrivals, so the renewal process
                // samples through the same path as Poisson/Uniform.
                let branch: f64 = rng.gen_range(0.0..1.0);
                let branch_rate = if branch < p_fast {
                    rate_fast_qps
                } else {
                    rate_slow_qps
                };
                exp_gap(rng, branch_rate)
            }
            ArrivalProcess::Mmpp2 { .. } | ArrivalProcess::OnOff { .. } => panic!(
                "modulated arrival processes are stateful; sample them through ArrivalSampler"
            ),
        }
    }

    /// Validates the process parameters (positive rates and dwell/window
    /// lengths where they are required).
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates, dwells or window lengths (a burst
    /// state must burst; an off-window of zero is a plain Poisson stream
    /// and should be written as one).
    pub fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Uniform { rate_qps } => {
                assert!(rate_qps > 0.0, "arrival rate must be positive");
            }
            ArrivalProcess::Mmpp2 {
                rate_low_qps,
                rate_high_qps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => {
                assert!(
                    rate_low_qps > 0.0 && rate_high_qps > 0.0,
                    "MMPP state rates must be positive"
                );
                assert!(
                    mean_dwell_low_s > 0.0 && mean_dwell_high_s > 0.0,
                    "MMPP mean dwell times must be positive"
                );
            }
            ArrivalProcess::OnOff {
                rate_on_qps,
                on_s,
                off_s,
            } => {
                assert!(rate_on_qps > 0.0, "on-window rate must be positive");
                assert!(on_s > 0.0 && off_s > 0.0, "on/off windows must be positive");
            }
            ArrivalProcess::HyperExp {
                p_fast,
                rate_fast_qps,
                rate_slow_qps,
            } => {
                assert!(
                    rate_fast_qps > 0.0 && rate_slow_qps > 0.0,
                    "hyperexponential branch rates must be positive"
                );
                assert!(
                    p_fast > 0.0 && p_fast < 1.0,
                    "hyperexponential branch probability must be in (0, 1); \
                     a degenerate branch is a plain Poisson stream and should \
                     be written as one"
                );
            }
        }
    }
}

/// Draws one exponential gap at `rate` events per second.
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Stateful arrival-time sampler: owns the seeded RNG plus whatever
/// modulation state the process carries (MMPP phase and dwell boundary),
/// and yields successive **absolute** arrival offsets in seconds from
/// stream start.
///
/// For the memoryless processes this draws exactly the same stream as the
/// historical `next_gap_seconds` loop (bit-for-bit, same RNG call
/// sequence), so pre-existing seeded Poisson/Uniform streams are unchanged.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    rng: StdRng,
    /// Current absolute time, seconds from stream start.
    t: f64,
    /// MMPP: `true` while in the high (burst) state.
    high: bool,
    /// MMPP: absolute time the current state's dwell ends.
    dwell_until: f64,
}

impl ArrivalSampler {
    /// Creates a sampler for `process`, deterministically seeded.
    ///
    /// # Panics
    ///
    /// Panics when the process parameters are invalid
    /// (see [`ArrivalProcess::validate`]).
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        process.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        // MMPP starts in the low state with a full exponential dwell ahead
        // of it; the other processes ignore these fields.
        let dwell_until = match process {
            ArrivalProcess::Mmpp2 {
                mean_dwell_low_s, ..
            } => exp_gap(&mut rng, 1.0 / mean_dwell_low_s),
            _ => f64::INFINITY,
        };
        ArrivalSampler {
            process,
            rng,
            t: 0.0,
            high: false,
            dwell_until,
        }
    }

    /// Returns the next arrival's absolute offset in seconds from stream
    /// start (strictly non-decreasing).
    pub fn next_arrival_s(&mut self) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { .. }
            | ArrivalProcess::Uniform { .. }
            | ArrivalProcess::HyperExp { .. } => {
                self.t += self.process.next_gap_seconds(&mut self.rng);
            }
            ArrivalProcess::Mmpp2 {
                rate_low_qps,
                rate_high_qps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => loop {
                let rate = if self.high {
                    rate_high_qps
                } else {
                    rate_low_qps
                };
                let gap = exp_gap(&mut self.rng, rate);
                if self.t + gap <= self.dwell_until {
                    self.t += gap;
                    break;
                }
                // The candidate arrival falls past the state switch: jump to
                // the switch and redraw at the new state's rate (correct by
                // memorylessness of the exponential).
                self.t = self.dwell_until;
                self.high = !self.high;
                let mean_dwell = if self.high {
                    mean_dwell_high_s
                } else {
                    mean_dwell_low_s
                };
                self.dwell_until = self.t + exp_gap(&mut self.rng, 1.0 / mean_dwell);
            },
            ArrivalProcess::OnOff {
                rate_on_qps,
                on_s,
                off_s,
            } => loop {
                let period = on_s + off_s;
                // The jump target is computed as a window-index *product*
                // rather than accumulated increments: adding `period - phase`
                // onto a large `t` can advance it by less than one ulp and
                // stall the walk. The product form has its own rounding trap —
                // right after a jump to `k·period`, `t / period` can round to
                // just below `k`, making `(window + 1)·period` land back on
                // `t` itself — so jumps bump the index until they strictly
                // advance.
                let window = (self.t / period).floor();
                let next_window_start = |mut w: f64, t: f64| loop {
                    w += 1.0;
                    let start = w * period;
                    if start > t {
                        return start;
                    }
                };
                let phase = self.t - window * period;
                if phase >= on_s {
                    // Inside an off-window: jump to the next on-window.
                    self.t = next_window_start(window, self.t);
                    continue;
                }
                let gap = exp_gap(&mut self.rng, rate_on_qps);
                if phase + gap < on_s {
                    self.t += gap;
                    break;
                }
                // Candidate lands past this on-window's end: jump to the
                // next window start and redraw (memorylessness again).
                self.t = next_window_start(window, self.t);
            },
        }
        self.t
    }
}

/// Named traffic-shape presets serving sweeps iterate over: each maps a
/// target long-run mean rate to a concrete [`ArrivalProcess`], so bench
/// cells can sweep `shape × load` with comparable offered work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficShape {
    /// Stationary Poisson at the mean rate.
    Poisson,
    /// Bursty 2-state MMPP: 75 ms low-state dwells at ⅓× the mean rate,
    /// 25 ms burst dwells at 3× — long-run mean equals the target
    /// (¾·⅓ + ¼·3 = 1), but a burst offers 3× the provisioned load.
    Bursty,
    /// On-off square wave: 50 ms on at 2× the mean rate, 50 ms silent —
    /// the diurnal/batch-ingest shape compressed to bench timescales.
    OnOff,
    /// Heavy-tailed hyperexponential renewal arrivals with a squared
    /// coefficient of variation of [`HEAVY_TAIL_CV2`] (balanced-means H2
    /// parameterization) — burstier than the MMPP-2 preset at the gap
    /// level: most gaps are short clumps, a few are long silences, with
    /// the long-run mean rate preserved exactly.
    HeavyTail,
}

/// Squared coefficient of variation of the [`TrafficShape::HeavyTail`]
/// gap distribution (Poisson gaps have CV² = 1).
pub const HEAVY_TAIL_CV2: f64 = 9.0;

impl TrafficShape {
    /// Every preset, in sweep order.
    pub fn all() -> [TrafficShape; 4] {
        [
            TrafficShape::Poisson,
            TrafficShape::Bursty,
            TrafficShape::OnOff,
            TrafficShape::HeavyTail,
        ]
    }

    /// The concrete arrival process offering `mean_qps` long-run.
    pub fn process(self, mean_qps: f64) -> ArrivalProcess {
        match self {
            TrafficShape::Poisson => ArrivalProcess::Poisson { rate_qps: mean_qps },
            TrafficShape::Bursty => ArrivalProcess::Mmpp2 {
                rate_low_qps: mean_qps / 3.0,
                rate_high_qps: mean_qps * 3.0,
                mean_dwell_low_s: 0.075,
                mean_dwell_high_s: 0.025,
            },
            TrafficShape::OnOff => ArrivalProcess::OnOff {
                rate_on_qps: mean_qps * 2.0,
                on_s: 0.05,
                off_s: 0.05,
            },
            TrafficShape::HeavyTail => {
                // Balanced-means H2 at CV² = c: each branch contributes half
                // the mean gap. p = ½(1 + √((c−1)/(c+1))), branch rates
                // 2pλ and 2(1−p)λ — the standard two-moment fit, mean gap
                // exactly 1/λ by construction.
                let c = HEAVY_TAIL_CV2;
                let p_fast = 0.5 * (1.0 + ((c - 1.0) / (c + 1.0)).sqrt());
                ArrivalProcess::HyperExp {
                    p_fast,
                    rate_fast_qps: 2.0 * p_fast * mean_qps,
                    rate_slow_qps: 2.0 * (1.0 - p_fast) * mean_qps,
                }
            }
        }
    }

    /// Short label for bench/report cells.
    pub fn label(self) -> &'static str {
        match self {
            TrafficShape::Poisson => "poisson",
            TrafficShape::Bursty => "bursty",
            TrafficShape::OnOff => "onoff",
            TrafficShape::HeavyTail => "heavytail",
        }
    }
}

/// A generated stream of query arrival timestamps (seconds from stream
/// start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryStream {
    arrivals_s: Vec<f64>,
}

impl QueryStream {
    /// Generates `count` arrivals from `process`, deterministically seeded.
    pub fn generate(process: ArrivalProcess, count: usize, seed: u64) -> Self {
        let mut sampler = ArrivalSampler::new(process, seed);
        let mut arrivals_s = Vec::with_capacity(count);
        for _ in 0..count {
            arrivals_s.push(sampler.next_arrival_s());
        }
        QueryStream { arrivals_s }
    }

    /// Arrival timestamps in seconds.
    pub fn arrivals_seconds(&self) -> &[f64] {
        &self.arrivals_s
    }

    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.arrivals_s.len()
    }

    /// Returns `true` when the stream holds no queries.
    pub fn is_empty(&self) -> bool {
        self.arrivals_s.is_empty()
    }

    /// Simulates a single-server queue where every query takes
    /// `service_time_s` seconds, returning each query's total latency
    /// (queueing + service) in seconds.
    pub fn simulate_fifo_latency(&self, service_time_s: f64) -> Vec<f64> {
        let mut server_free_at = 0.0_f64;
        let mut latencies = Vec::with_capacity(self.arrivals_s.len());
        for &arrival in &self.arrivals_s {
            let start = arrival.max(server_free_at);
            let finish = start + service_time_s;
            latencies.push(finish - arrival);
            server_free_at = finish;
        }
        latencies
    }

    /// Returns the `p`-th percentile (0.0–1.0) of a latency vector.
    ///
    /// Nearest-rank on the sorted values: the index is
    /// `round((len - 1) · p)`, so `p = 0` is exactly the minimum, `p = 1`
    /// exactly the maximum, and a single-element input returns that element
    /// for every `p` — behaviour pinned by unit tests because the serving
    /// tail-latency results are computed through here.
    ///
    /// # Panics
    ///
    /// Panics if `latencies` is empty, `p` is outside `[0, 1]`, or any
    /// latency is NaN.
    pub fn percentile(latencies: &[f64], p: f64) -> f64 {
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Self::percentile_sorted(&sorted, p)
    }

    /// [`QueryStream::percentile`] over an already **ascending-sorted**
    /// slice — no copy, no re-sort; what [`LatencySummary`] uses to extract
    /// several percentiles from one sort.
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
    pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
        assert!(!sorted.is_empty(), "percentile of empty latency set");
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        // `(len - 1) · p` is at most `len - 1` for p ≤ 1, so the rounded
        // index can never run past the end — p = 1.0 lands exactly on the
        // maximum and p = 0.0 exactly on the minimum.
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Pairs every query with its arrival offset (seconds from stream
    /// start), in arrival order — the open-loop **replay iterator** a load
    /// generator walks, sleeping until each offset and then releasing the
    /// query. Latency accounting stays tied to the *scheduled* arrival, so
    /// a generator running late inflates measured latency instead of
    /// silently thinning the offered load (open-loop semantics).
    pub fn replay(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.arrivals_s.iter().copied().enumerate()
    }
}

/// Tail-latency digest of a set of recorded per-request latencies, in
/// seconds: the helper serving experiments use to turn raw recorded
/// latencies into the p50/p95/p99 numbers the paper-adjacent serving
/// studies (RecNMP, MicroRec) report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Number of latencies summarized.
    pub count: usize,
    /// Arithmetic mean, in seconds.
    pub mean_s: f64,
    /// Median, in seconds.
    pub p50_s: f64,
    /// 95th percentile, in seconds.
    pub p95_s: f64,
    /// 99th percentile, in seconds.
    pub p99_s: f64,
    /// 99.9th percentile, in seconds — the deep-tail number at-load serving
    /// SLAs are actually written against (p99 hides one request in a
    /// thousand).
    pub p999_s: f64,
    /// Maximum, in seconds.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes recorded latencies (one sort, every percentile from it).
    /// Returns `None` for an empty set.
    pub fn from_latencies(latencies: &[f64]) -> Option<LatencySummary> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mean_s = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(LatencySummary {
            count: sorted.len(),
            mean_s,
            p50_s: QueryStream::percentile_sorted(&sorted, 0.50),
            p95_s: QueryStream::percentile_sorted(&sorted, 0.95),
            p99_s: QueryStream::percentile_sorted(&sorted, 0.99),
            p999_s: QueryStream::percentile_sorted(&sorted, 0.999),
            max_s: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_close() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 1000.0 }, 20_000, 1);
        let span = *stream.arrivals_seconds().last().unwrap();
        let measured_rate = stream.len() as f64 / span;
        assert!((measured_rate - 1000.0).abs() / 1000.0 < 0.05);
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 100.0 }, 10, 2);
        let a = stream.arrivals_seconds();
        for w in a.windows(2) {
            assert!((w[1] - w[0] - 0.01).abs() < 1e-9);
        }
    }

    #[test]
    fn arrivals_are_monotonic() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 50.0 }, 1000, 3);
        assert!(stream.arrivals_seconds().windows(2).all(|w| w[1] >= w[0]));
        assert!(!stream.is_empty());
    }

    #[test]
    fn fifo_latency_under_light_load_equals_service_time() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 10.0 }, 100, 4);
        // service time 1 ms << 100 ms gap: no queueing.
        let lat = stream.simulate_fifo_latency(0.001);
        assert!(lat.iter().all(|&l| (l - 0.001).abs() < 1e-9));
    }

    #[test]
    fn fifo_latency_grows_under_overload() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 1000.0 }, 100, 5);
        // service time 10 ms >> 1 ms gap: queue builds up linearly.
        let lat = stream.simulate_fifo_latency(0.010);
        assert!(lat.last().unwrap() > &0.5);
        assert!(QueryStream::percentile(&lat, 0.99) > QueryStream::percentile(&lat, 0.5));
    }

    #[test]
    fn percentile_bounds() {
        let lat = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(QueryStream::percentile(&lat, 0.0), 1.0);
        assert_eq!(QueryStream::percentile(&lat, 1.0), 4.0);
    }

    #[test]
    fn percentile_p0_and_p1_are_exact_extremes_regardless_of_order() {
        // Unsorted input with duplicates: p=0 must be the true minimum and
        // p=1 the true maximum — never an off-by-one neighbour.
        let lat = vec![5.0, 1.0, 9.0, 1.0, 7.0, 9.0, 3.0];
        assert_eq!(QueryStream::percentile(&lat, 0.0), 1.0);
        assert_eq!(QueryStream::percentile(&lat, 1.0), 9.0);
    }

    #[test]
    fn percentile_of_single_element_is_that_element_for_every_p() {
        let lat = vec![0.125];
        for p in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(QueryStream::percentile(&lat, p), 0.125);
        }
    }

    #[test]
    fn percentile_index_math_is_pinned() {
        // Nearest-rank on (len-1)·p: document the exact rank selected so
        // serving results can never drift silently. Two elements at p=0.5
        // rounds up (0.5 → index 1); four elements at p=0.5 picks index 2.
        assert_eq!(QueryStream::percentile(&[1.0, 2.0], 0.5), 2.0);
        assert_eq!(QueryStream::percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 3.0);
        // p95/p99 on 100 samples 0..100: ranks 94 and 98.
        let lat: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(QueryStream::percentile(&lat, 0.95), 94.0);
        assert_eq!(QueryStream::percentile(&lat, 0.99), 98.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty latency set")]
    fn percentile_of_empty_set_panics() {
        QueryStream::percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,1]")]
    fn percentile_out_of_range_panics() {
        // Percentages (e.g. 99 for p99) are a caller bug, not a scale.
        QueryStream::percentile(&[1.0], 99.0);
    }

    #[test]
    fn percentile_sorted_skips_the_copy_but_matches() {
        let lat = vec![4.0, 1.0, 3.0, 2.0];
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                QueryStream::percentile(&lat, p),
                QueryStream::percentile_sorted(&sorted, p)
            );
        }
    }

    #[test]
    fn latency_summary_digests_percentiles_and_mean() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64 * 0.001).collect();
        let s = LatencySummary::from_latencies(&lat).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 0.0505).abs() < 1e-9);
        assert_eq!(s.p50_s, QueryStream::percentile(&lat, 0.50));
        assert_eq!(s.p95_s, QueryStream::percentile(&lat, 0.95));
        assert_eq!(s.p99_s, QueryStream::percentile(&lat, 0.99));
        assert_eq!(s.p999_s, QueryStream::percentile(&lat, 0.999));
        assert!(s.p999_s >= s.p99_s && s.p999_s <= s.max_s);
        assert_eq!(s.max_s, 0.1);
        assert!(LatencySummary::from_latencies(&[]).is_none());
    }

    #[test]
    fn latency_summary_p999_separates_a_deep_tail_outlier() {
        // 499 fast requests and one 100 ms straggler: p99 stays at the fast
        // cohort while p99.9 lands on the straggler (nearest rank on 500
        // samples: 499·0.999 = 498.5 rounds to index 499) — the case the
        // p99.9 column exists to expose.
        let mut lat = vec![0.001; 499];
        lat.push(0.1);
        let s = LatencySummary::from_latencies(&lat).unwrap();
        assert_eq!(s.p99_s, 0.001);
        assert_eq!(s.p999_s, 0.1);
    }

    #[test]
    fn replay_yields_every_arrival_in_order() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 100.0 }, 50, 11);
        let replayed: Vec<(usize, f64)> = stream.replay().collect();
        assert_eq!(replayed.len(), 50);
        assert!(replayed.iter().enumerate().all(|(i, &(id, _))| id == i));
        let offsets: Vec<f64> = replayed.iter().map(|&(_, t)| t).collect();
        assert_eq!(offsets, stream.arrivals_seconds());
        assert!(offsets.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        ArrivalProcess::Poisson { rate_qps: 0.0 }.next_gap_seconds(&mut rng);
    }

    #[test]
    fn generation_deterministic() {
        let a = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 10.0 }, 50, 9);
        let b = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 10.0 }, 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn modulated_generation_is_deterministic_and_monotonic() {
        for process in [
            TrafficShape::Bursty.process(5_000.0),
            TrafficShape::OnOff.process(5_000.0),
        ] {
            let a = QueryStream::generate(process, 2_000, 17);
            let b = QueryStream::generate(process, 2_000, 17);
            assert_eq!(
                a,
                b,
                "{} stream must be seed-deterministic",
                process.label()
            );
            assert!(
                a.arrivals_seconds().windows(2).all(|w| w[1] >= w[0]),
                "{} arrivals must be non-decreasing",
                process.label()
            );
            let c = QueryStream::generate(process, 2_000, 18);
            assert_ne!(a, c, "different seeds must differ");
        }
    }

    #[test]
    fn mmpp2_long_run_rate_matches_the_configured_mean() {
        let process = TrafficShape::Bursty.process(10_000.0);
        assert!((process.rate_qps() - 10_000.0).abs() < 1e-9);
        // Long stream: the measured rate converges on the configured mean.
        let stream = QueryStream::generate(process, 100_000, 3);
        let span = *stream.arrivals_seconds().last().unwrap();
        let measured = stream.len() as f64 / span;
        assert!(
            (measured - 10_000.0).abs() / 10_000.0 < 0.08,
            "measured mean rate {measured:.0} qps drifted from 10k"
        );
    }

    #[test]
    fn mmpp2_dwell_statistics_are_within_tolerance() {
        // Count arrivals in dwell-sized windows: the burst state must show
        // up as windows far above the mean rate and the low state far
        // below — i.e. the index of dispersion (var/mean of window counts)
        // is well above the ~1.0 a stationary Poisson stream would show.
        let mean_qps = 20_000.0;
        let window_s = 0.025;
        let dispersion = |process: ArrivalProcess| {
            let stream = QueryStream::generate(process, 200_000, 7);
            let span = *stream.arrivals_seconds().last().unwrap();
            let windows = (span / window_s).floor() as usize;
            let mut counts = vec![0usize; windows];
            for &t in stream.arrivals_seconds() {
                let w = (t / window_s) as usize;
                if w < windows {
                    counts[w] += 1;
                }
            }
            let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / counts.len() as f64;
            var / mean
        };
        let poisson = dispersion(TrafficShape::Poisson.process(mean_qps));
        let bursty = dispersion(TrafficShape::Bursty.process(mean_qps));
        assert!(
            (0.5..2.0).contains(&poisson),
            "Poisson window counts should be near-Poisson dispersed, got {poisson:.2}"
        );
        assert!(
            bursty > 10.0,
            "MMPP burst/low states must overdisperse window counts, got {bursty:.2}"
        );
    }

    #[test]
    fn on_off_arrivals_only_land_in_on_windows_at_the_on_rate() {
        let process = ArrivalProcess::OnOff {
            rate_on_qps: 8_000.0,
            on_s: 0.05,
            off_s: 0.05,
        };
        assert!((process.rate_qps() - 4_000.0).abs() < 1e-9);
        let stream = QueryStream::generate(process, 20_000, 5);
        for &t in stream.arrivals_seconds() {
            let phase = t.rem_euclid(0.1);
            assert!(phase < 0.05, "arrival at {t:.4}s lands in an off-window");
        }
        // Within on-windows the rate is the on-rate, so the stream's mean
        // over full periods is the duty-cycled mean.
        let span = *stream.arrivals_seconds().last().unwrap();
        let measured = stream.len() as f64 / span;
        assert!(
            (measured - 4_000.0).abs() / 4_000.0 < 0.08,
            "duty-cycled mean rate {measured:.0} qps drifted from 4k"
        );
    }

    #[test]
    fn traffic_shapes_label_and_mean_preserving() {
        for shape in TrafficShape::all() {
            let process = shape.process(50_000.0);
            assert!(
                (process.rate_qps() - 50_000.0).abs() < 1e-6,
                "{} preset must preserve the mean rate",
                shape.label()
            );
        }
        assert_eq!(TrafficShape::Poisson.label(), "poisson");
        assert_eq!(TrafficShape::Bursty.label(), "bursty");
        assert_eq!(TrafficShape::OnOff.label(), "onoff");
        assert_eq!(TrafficShape::HeavyTail.label(), "heavytail");
        assert_eq!(TrafficShape::Bursty.process(1.0).label(), "mmpp2");
        assert_eq!(TrafficShape::OnOff.process(1.0).label(), "onoff");
        assert_eq!(TrafficShape::HeavyTail.process(1.0).label(), "hyperexp");
        assert_eq!(ArrivalProcess::Uniform { rate_qps: 1.0 }.label(), "uniform");
    }

    #[test]
    fn heavy_tail_preset_is_mean_preserving_and_deterministic() {
        let process = TrafficShape::HeavyTail.process(10_000.0);
        assert!(
            (process.rate_qps() - 10_000.0).abs() < 1e-9,
            "balanced-means H2 must preserve the mean rate exactly"
        );
        let a = QueryStream::generate(process, 50_000, 21);
        let b = QueryStream::generate(process, 50_000, 21);
        assert_eq!(a, b, "heavy-tail stream must be seed-deterministic");
        assert_ne!(a, QueryStream::generate(process, 50_000, 22));
        assert!(a.arrivals_seconds().windows(2).all(|w| w[1] >= w[0]));
        // Long stream: the measured rate converges on the configured mean.
        let span = *a.arrivals_seconds().last().unwrap();
        let measured = a.len() as f64 / span;
        assert!(
            (measured - 10_000.0).abs() / 10_000.0 < 0.08,
            "measured mean rate {measured:.0} qps drifted from 10k"
        );
    }

    #[test]
    fn heavy_tail_gap_statistics_are_pinned() {
        // Gap-level statistics: the H2 preset is built for CV² = 9, far
        // above Poisson's 1. Sampling noise on a 200k-gap stream keeps the
        // empirical CV² within a broad pinned band — drifting parameters
        // (a wrong branch probability or unbalanced means) land far outside.
        let cv2 = |process: ArrivalProcess| {
            let stream = QueryStream::generate(process, 200_000, 7);
            let a = stream.arrivals_seconds();
            let gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(TrafficShape::Poisson.process(20_000.0));
        let heavy = cv2(TrafficShape::HeavyTail.process(20_000.0));
        assert!(
            (0.9..1.1).contains(&poisson),
            "Poisson gap CV² must sit near 1, got {poisson:.2}"
        );
        assert!(
            (6.0..12.0).contains(&heavy),
            "heavy-tail gap CV² must sit near {HEAVY_TAIL_CV2}, got {heavy:.2}"
        );
        // Window-count dispersion (the MMPP-2 test's instrument): a heavy-
        // tailed renewal stream overdisperses counts well past Poisson too.
        let dispersion = |process: ArrivalProcess| {
            let stream = QueryStream::generate(process, 200_000, 7);
            let window_s = 0.025;
            let span = *stream.arrivals_seconds().last().unwrap();
            let windows = (span / window_s).floor() as usize;
            let mut counts = vec![0usize; windows];
            for &t in stream.arrivals_seconds() {
                let w = (t / window_s) as usize;
                if w < windows {
                    counts[w] += 1;
                }
            }
            let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / counts.len() as f64;
            var / mean
        };
        let heavy_dispersion = dispersion(TrafficShape::HeavyTail.process(20_000.0));
        assert!(
            heavy_dispersion > 3.0,
            "heavy-tail window counts must overdisperse, got {heavy_dispersion:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "branch probability")]
    fn hyperexp_rejects_degenerate_branch_probability() {
        ArrivalSampler::new(
            ArrivalProcess::HyperExp {
                p_fast: 1.0,
                rate_fast_qps: 10.0,
                rate_slow_qps: 1.0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "stateful")]
    fn modulated_gap_sampling_requires_the_sampler() {
        let mut rng = StdRng::seed_from_u64(0);
        TrafficShape::Bursty
            .process(100.0)
            .next_gap_seconds(&mut rng);
    }

    #[test]
    #[should_panic(expected = "dwell times must be positive")]
    fn mmpp2_rejects_non_positive_dwells() {
        ArrivalSampler::new(
            ArrivalProcess::Mmpp2 {
                rate_low_qps: 1.0,
                rate_high_qps: 2.0,
                mean_dwell_low_s: 0.0,
                mean_dwell_high_s: 1.0,
            },
            0,
        );
    }
}
