//! Query arrival processes for service-level (SLA/QoS) studies.
//!
//! The paper motivates CPU-based deployment with firm SLA targets for
//! user-facing inference. The examples in this workspace use a Poisson
//! arrival process plus the per-request latencies predicted by the system
//! simulators to estimate tail latency under load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inter-arrival behaviour of inference queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_qps` queries per second (exponential
    /// inter-arrival times).
    Poisson {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Deterministic arrivals exactly `1/rate_qps` apart.
    Uniform {
        /// Arrival rate in queries per second.
        rate_qps: f64,
    },
}

impl ArrivalProcess {
    /// Mean arrival rate in queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Uniform { rate_qps } => rate_qps,
        }
    }

    /// Draws the next inter-arrival gap in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive.
    pub fn next_gap_seconds(&self, rng: &mut StdRng) -> f64 {
        let rate = self.rate_qps();
        assert!(rate > 0.0, "arrival rate must be positive");
        match self {
            ArrivalProcess::Poisson { .. } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() / rate
            }
            ArrivalProcess::Uniform { .. } => 1.0 / rate,
        }
    }
}

/// A generated stream of query arrival timestamps (seconds from stream
/// start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryStream {
    arrivals_s: Vec<f64>,
}

impl QueryStream {
    /// Generates `count` arrivals from `process`, deterministically seeded.
    pub fn generate(process: ArrivalProcess, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut arrivals_s = Vec::with_capacity(count);
        for _ in 0..count {
            t += process.next_gap_seconds(&mut rng);
            arrivals_s.push(t);
        }
        QueryStream { arrivals_s }
    }

    /// Arrival timestamps in seconds.
    pub fn arrivals_seconds(&self) -> &[f64] {
        &self.arrivals_s
    }

    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.arrivals_s.len()
    }

    /// Returns `true` when the stream holds no queries.
    pub fn is_empty(&self) -> bool {
        self.arrivals_s.is_empty()
    }

    /// Simulates a single-server queue where every query takes
    /// `service_time_s` seconds, returning each query's total latency
    /// (queueing + service) in seconds.
    pub fn simulate_fifo_latency(&self, service_time_s: f64) -> Vec<f64> {
        let mut server_free_at = 0.0_f64;
        let mut latencies = Vec::with_capacity(self.arrivals_s.len());
        for &arrival in &self.arrivals_s {
            let start = arrival.max(server_free_at);
            let finish = start + service_time_s;
            latencies.push(finish - arrival);
            server_free_at = finish;
        }
        latencies
    }

    /// Returns the `p`-th percentile (0.0–1.0) of a latency vector.
    ///
    /// # Panics
    ///
    /// Panics if `latencies` is empty or `p` is outside `[0, 1]`.
    pub fn percentile(latencies: &[f64], p: f64) -> f64 {
        assert!(!latencies.is_empty(), "percentile of empty latency set");
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_close() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 1000.0 }, 20_000, 1);
        let span = *stream.arrivals_seconds().last().unwrap();
        let measured_rate = stream.len() as f64 / span;
        assert!((measured_rate - 1000.0).abs() / 1000.0 < 0.05);
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 100.0 }, 10, 2);
        let a = stream.arrivals_seconds();
        for w in a.windows(2) {
            assert!((w[1] - w[0] - 0.01).abs() < 1e-9);
        }
    }

    #[test]
    fn arrivals_are_monotonic() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 50.0 }, 1000, 3);
        assert!(stream.arrivals_seconds().windows(2).all(|w| w[1] >= w[0]));
        assert!(!stream.is_empty());
    }

    #[test]
    fn fifo_latency_under_light_load_equals_service_time() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 10.0 }, 100, 4);
        // service time 1 ms << 100 ms gap: no queueing.
        let lat = stream.simulate_fifo_latency(0.001);
        assert!(lat.iter().all(|&l| (l - 0.001).abs() < 1e-9));
    }

    #[test]
    fn fifo_latency_grows_under_overload() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 1000.0 }, 100, 5);
        // service time 10 ms >> 1 ms gap: queue builds up linearly.
        let lat = stream.simulate_fifo_latency(0.010);
        assert!(lat.last().unwrap() > &0.5);
        assert!(QueryStream::percentile(&lat, 0.99) > QueryStream::percentile(&lat, 0.5));
    }

    #[test]
    fn percentile_bounds() {
        let lat = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(QueryStream::percentile(&lat, 0.0), 1.0);
        assert_eq!(QueryStream::percentile(&lat, 1.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        ArrivalProcess::Poisson { rate_qps: 0.0 }.next_gap_seconds(&mut rng);
    }

    #[test]
    fn generation_deterministic() {
        let a = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 10.0 }, 50, 9);
        let b = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 10.0 }, 50, 9);
        assert_eq!(a, b);
    }
}
