//! Query arrival processes for service-level (SLA/QoS) studies.
//!
//! The paper motivates CPU-based deployment with firm SLA targets for
//! user-facing inference. The examples in this workspace use a Poisson
//! arrival process plus the per-request latencies predicted by the system
//! simulators to estimate tail latency under load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inter-arrival behaviour of inference queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_qps` queries per second (exponential
    /// inter-arrival times).
    Poisson {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Deterministic arrivals exactly `1/rate_qps` apart.
    Uniform {
        /// Arrival rate in queries per second.
        rate_qps: f64,
    },
}

impl ArrivalProcess {
    /// Mean arrival rate in queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Uniform { rate_qps } => rate_qps,
        }
    }

    /// Draws the next inter-arrival gap in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive.
    pub fn next_gap_seconds(&self, rng: &mut StdRng) -> f64 {
        let rate = self.rate_qps();
        assert!(rate > 0.0, "arrival rate must be positive");
        match self {
            ArrivalProcess::Poisson { .. } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() / rate
            }
            ArrivalProcess::Uniform { .. } => 1.0 / rate,
        }
    }
}

/// A generated stream of query arrival timestamps (seconds from stream
/// start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryStream {
    arrivals_s: Vec<f64>,
}

impl QueryStream {
    /// Generates `count` arrivals from `process`, deterministically seeded.
    pub fn generate(process: ArrivalProcess, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut arrivals_s = Vec::with_capacity(count);
        for _ in 0..count {
            t += process.next_gap_seconds(&mut rng);
            arrivals_s.push(t);
        }
        QueryStream { arrivals_s }
    }

    /// Arrival timestamps in seconds.
    pub fn arrivals_seconds(&self) -> &[f64] {
        &self.arrivals_s
    }

    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.arrivals_s.len()
    }

    /// Returns `true` when the stream holds no queries.
    pub fn is_empty(&self) -> bool {
        self.arrivals_s.is_empty()
    }

    /// Simulates a single-server queue where every query takes
    /// `service_time_s` seconds, returning each query's total latency
    /// (queueing + service) in seconds.
    pub fn simulate_fifo_latency(&self, service_time_s: f64) -> Vec<f64> {
        let mut server_free_at = 0.0_f64;
        let mut latencies = Vec::with_capacity(self.arrivals_s.len());
        for &arrival in &self.arrivals_s {
            let start = arrival.max(server_free_at);
            let finish = start + service_time_s;
            latencies.push(finish - arrival);
            server_free_at = finish;
        }
        latencies
    }

    /// Returns the `p`-th percentile (0.0–1.0) of a latency vector.
    ///
    /// Nearest-rank on the sorted values: the index is
    /// `round((len - 1) · p)`, so `p = 0` is exactly the minimum, `p = 1`
    /// exactly the maximum, and a single-element input returns that element
    /// for every `p` — behaviour pinned by unit tests because the serving
    /// tail-latency results are computed through here.
    ///
    /// # Panics
    ///
    /// Panics if `latencies` is empty, `p` is outside `[0, 1]`, or any
    /// latency is NaN.
    pub fn percentile(latencies: &[f64], p: f64) -> f64 {
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Self::percentile_sorted(&sorted, p)
    }

    /// [`QueryStream::percentile`] over an already **ascending-sorted**
    /// slice — no copy, no re-sort; what [`LatencySummary`] uses to extract
    /// several percentiles from one sort.
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
    pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
        assert!(!sorted.is_empty(), "percentile of empty latency set");
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        // `(len - 1) · p` is at most `len - 1` for p ≤ 1, so the rounded
        // index can never run past the end — p = 1.0 lands exactly on the
        // maximum and p = 0.0 exactly on the minimum.
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Pairs every query with its arrival offset (seconds from stream
    /// start), in arrival order — the open-loop **replay iterator** a load
    /// generator walks, sleeping until each offset and then releasing the
    /// query. Latency accounting stays tied to the *scheduled* arrival, so
    /// a generator running late inflates measured latency instead of
    /// silently thinning the offered load (open-loop semantics).
    pub fn replay(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.arrivals_s.iter().copied().enumerate()
    }
}

/// Tail-latency digest of a set of recorded per-request latencies, in
/// seconds: the helper serving experiments use to turn raw recorded
/// latencies into the p50/p95/p99 numbers the paper-adjacent serving
/// studies (RecNMP, MicroRec) report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of latencies summarized.
    pub count: usize,
    /// Arithmetic mean, in seconds.
    pub mean_s: f64,
    /// Median, in seconds.
    pub p50_s: f64,
    /// 95th percentile, in seconds.
    pub p95_s: f64,
    /// 99th percentile, in seconds.
    pub p99_s: f64,
    /// 99.9th percentile, in seconds — the deep-tail number at-load serving
    /// SLAs are actually written against (p99 hides one request in a
    /// thousand).
    pub p999_s: f64,
    /// Maximum, in seconds.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes recorded latencies (one sort, every percentile from it).
    /// Returns `None` for an empty set.
    pub fn from_latencies(latencies: &[f64]) -> Option<LatencySummary> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mean_s = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(LatencySummary {
            count: sorted.len(),
            mean_s,
            p50_s: QueryStream::percentile_sorted(&sorted, 0.50),
            p95_s: QueryStream::percentile_sorted(&sorted, 0.95),
            p99_s: QueryStream::percentile_sorted(&sorted, 0.99),
            p999_s: QueryStream::percentile_sorted(&sorted, 0.999),
            max_s: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_close() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 1000.0 }, 20_000, 1);
        let span = *stream.arrivals_seconds().last().unwrap();
        let measured_rate = stream.len() as f64 / span;
        assert!((measured_rate - 1000.0).abs() / 1000.0 < 0.05);
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 100.0 }, 10, 2);
        let a = stream.arrivals_seconds();
        for w in a.windows(2) {
            assert!((w[1] - w[0] - 0.01).abs() < 1e-9);
        }
    }

    #[test]
    fn arrivals_are_monotonic() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 50.0 }, 1000, 3);
        assert!(stream.arrivals_seconds().windows(2).all(|w| w[1] >= w[0]));
        assert!(!stream.is_empty());
    }

    #[test]
    fn fifo_latency_under_light_load_equals_service_time() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 10.0 }, 100, 4);
        // service time 1 ms << 100 ms gap: no queueing.
        let lat = stream.simulate_fifo_latency(0.001);
        assert!(lat.iter().all(|&l| (l - 0.001).abs() < 1e-9));
    }

    #[test]
    fn fifo_latency_grows_under_overload() {
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 1000.0 }, 100, 5);
        // service time 10 ms >> 1 ms gap: queue builds up linearly.
        let lat = stream.simulate_fifo_latency(0.010);
        assert!(lat.last().unwrap() > &0.5);
        assert!(QueryStream::percentile(&lat, 0.99) > QueryStream::percentile(&lat, 0.5));
    }

    #[test]
    fn percentile_bounds() {
        let lat = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(QueryStream::percentile(&lat, 0.0), 1.0);
        assert_eq!(QueryStream::percentile(&lat, 1.0), 4.0);
    }

    #[test]
    fn percentile_p0_and_p1_are_exact_extremes_regardless_of_order() {
        // Unsorted input with duplicates: p=0 must be the true minimum and
        // p=1 the true maximum — never an off-by-one neighbour.
        let lat = vec![5.0, 1.0, 9.0, 1.0, 7.0, 9.0, 3.0];
        assert_eq!(QueryStream::percentile(&lat, 0.0), 1.0);
        assert_eq!(QueryStream::percentile(&lat, 1.0), 9.0);
    }

    #[test]
    fn percentile_of_single_element_is_that_element_for_every_p() {
        let lat = vec![0.125];
        for p in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(QueryStream::percentile(&lat, p), 0.125);
        }
    }

    #[test]
    fn percentile_index_math_is_pinned() {
        // Nearest-rank on (len-1)·p: document the exact rank selected so
        // serving results can never drift silently. Two elements at p=0.5
        // rounds up (0.5 → index 1); four elements at p=0.5 picks index 2.
        assert_eq!(QueryStream::percentile(&[1.0, 2.0], 0.5), 2.0);
        assert_eq!(QueryStream::percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 3.0);
        // p95/p99 on 100 samples 0..100: ranks 94 and 98.
        let lat: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(QueryStream::percentile(&lat, 0.95), 94.0);
        assert_eq!(QueryStream::percentile(&lat, 0.99), 98.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty latency set")]
    fn percentile_of_empty_set_panics() {
        QueryStream::percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,1]")]
    fn percentile_out_of_range_panics() {
        // Percentages (e.g. 99 for p99) are a caller bug, not a scale.
        QueryStream::percentile(&[1.0], 99.0);
    }

    #[test]
    fn percentile_sorted_skips_the_copy_but_matches() {
        let lat = vec![4.0, 1.0, 3.0, 2.0];
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                QueryStream::percentile(&lat, p),
                QueryStream::percentile_sorted(&sorted, p)
            );
        }
    }

    #[test]
    fn latency_summary_digests_percentiles_and_mean() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64 * 0.001).collect();
        let s = LatencySummary::from_latencies(&lat).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 0.0505).abs() < 1e-9);
        assert_eq!(s.p50_s, QueryStream::percentile(&lat, 0.50));
        assert_eq!(s.p95_s, QueryStream::percentile(&lat, 0.95));
        assert_eq!(s.p99_s, QueryStream::percentile(&lat, 0.99));
        assert_eq!(s.p999_s, QueryStream::percentile(&lat, 0.999));
        assert!(s.p999_s >= s.p99_s && s.p999_s <= s.max_s);
        assert_eq!(s.max_s, 0.1);
        assert!(LatencySummary::from_latencies(&[]).is_none());
    }

    #[test]
    fn latency_summary_p999_separates_a_deep_tail_outlier() {
        // 499 fast requests and one 100 ms straggler: p99 stays at the fast
        // cohort while p99.9 lands on the straggler (nearest rank on 500
        // samples: 499·0.999 = 498.5 rounds to index 499) — the case the
        // p99.9 column exists to expose.
        let mut lat = vec![0.001; 499];
        lat.push(0.1);
        let s = LatencySummary::from_latencies(&lat).unwrap();
        assert_eq!(s.p99_s, 0.001);
        assert_eq!(s.p999_s, 0.1);
    }

    #[test]
    fn replay_yields_every_arrival_in_order() {
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 100.0 }, 50, 11);
        let replayed: Vec<(usize, f64)> = stream.replay().collect();
        assert_eq!(replayed.len(), 50);
        assert!(replayed.iter().enumerate().all(|(i, &(id, _))| id == i));
        let offsets: Vec<f64> = replayed.iter().map(|&(_, t)| t).collect();
        assert_eq!(offsets, stream.arrivals_seconds());
        assert!(offsets.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        ArrivalProcess::Poisson { rate_qps: 0.0 }.next_gap_seconds(&mut rng);
    }

    #[test]
    fn generation_deterministic() {
        let a = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 10.0 }, 50, 9);
        let b = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 10.0 }, 50, 9);
        assert_eq!(a, b);
    }
}
