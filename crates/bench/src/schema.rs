//! Declared column sets for the committed `BENCH_*.json` trajectory files.
//!
//! Each writer in [`crate::runner`] named `bench_<x>_json` has a matching
//! `BENCH_<X>_COLUMNS` const here listing every JSON key it may emit.
//! `centaur-analyze`'s `bench-schema` lint cross-checks the two in CI:
//! writing a key that is not declared (or declaring one that is never
//! written) fails the build. The point is append-compatibility — the
//! trajectory files accumulate rows across PRs, so adding or dropping a
//! column must be a conscious, reviewed schema change in this file rather
//! than a drive-by edit to a format string.

/// Columns of `BENCH_batch.json` (dense batch-throughput sweep): run
/// metadata plus per-point batch geometry and the batch-major speedup.
pub const BENCH_BATCH_COLUMNS: &[&str] = &[
    "unit",
    "models",
    "model",
    "points",
    "batch",
    "backend",
    "batch_major",
    "per_sample",
    "speedup",
];

/// Columns of `BENCH_sparse.json` (embedding gather / sparse-stage sweep):
/// per-distribution gather throughput, streamer overlap, and cache hits.
pub const BENCH_SPARSE_COLUMNS: &[&str] = &[
    "unit",
    "stage",
    "model",
    "points",
    "distribution",
    "batch",
    "backend",
    "samples_per_sec",
    "streamer_samples_per_sec",
    "cache_hit_rate",
    "speedup_vs_scalar",
];

/// Columns of `BENCH_serve.json` (serving scenarios: overload, fault
/// injection, multi-tenant): offered/achieved load, shedding and fault
/// accounting, and the latency percentile ladder.
pub const BENCH_SERVE_COLUMNS: &[&str] = &[
    "unit",
    "scenario",
    "model",
    "fifo_capacity_qps",
    "points",
    "tenant",
    "pool",
    "offered_qps",
    "traffic",
    "policy",
    "replicas",
    "slo_ms",
    "completed",
    "achieved_qps",
    "goodput_qps",
    "shed",
    "shed_admission",
    "shed_expired",
    "deadline_misses",
    "faults",
    "availability",
    "failed",
    "retries",
    "restarts",
    "replicas_lost",
    "hedges",
    "hedge_wins",
    "duplicates_suppressed",
    "quarantines",
    "readmissions",
    "mean_batch",
    "mean_s",
    "p50_s",
    "p95_s",
    "p99_s",
    "p999_s",
    "max_s",
];
