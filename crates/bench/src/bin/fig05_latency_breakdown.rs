//! Regenerates Figure 5: CPU-only inference latency breakdown (EMB / MLP /
//! Other) and normalized latency as a function of batch size.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();
    let mut table = TextTable::new(
        "Figure 5: CPU-only latency breakdown per batch size",
        &[
            "Model",
            "Batch",
            "EMB %",
            "MLP %",
            "Other %",
            "Latency (us)",
            "Normalized",
        ],
    );

    // Normalisation reference: the slowest model at batch 1 is DLRM(1) in
    // the paper's plot; we normalise to DLRM(1)/batch-1 as the figure does.
    let reference = runner.run_cpu(&PaperModel::Dlrm1.config(), 1).total_ns();

    for model in PaperModel::all() {
        for batch in ExperimentRunner::batch_sizes() {
            let r = runner.run_cpu(&model.config(), batch);
            table.add_row(vec![
                model.label().to_string(),
                batch.to_string(),
                format!("{:.1}", r.breakdown.embedding_fraction() * 100.0),
                format!("{:.1}", r.breakdown.mlp_fraction() * 100.0),
                format!("{:.1}", r.breakdown.other_fraction() * 100.0),
                format!("{:.1}", r.total_ns() / 1e3),
                format!("{:.2}", r.total_ns() / reference),
            ]);
        }
    }
    table.print();
}
