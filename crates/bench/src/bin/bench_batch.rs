//! Measures functional batched-inference throughput through the accelerator
//! datapath — batch-major (`infer_batch`, one GEMM per MLP layer) vs the
//! per-sample loop — across batch sizes and kernel backends, prints the
//! table and writes the machine-readable `BENCH_batch.json` tracked for the
//! performance trajectory.
//!
//! Two paper workloads bracket the behaviour: DLRM(1) is gather-heavy
//! (light MLP, 20 lookups/table), where the identical embedding work
//! dilutes the batching win; DLRM(6) is MLP-heavy (2 lookups/table), where
//! the one-GEMM-per-layer path shows its full weight-reuse speedup.
//!
//! `CRITERION_QUICK=1` collapses the measurement to a smoke run (used by
//! CI, where the numbers only need to exist, not to be stable).

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::kernel::KernelBackend;
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();
    let batches = [1usize, 4, 16, 64, 128];
    let mut sections = Vec::new();
    // Tables are scaled down to fit functional benchmarking; the MLP and
    // interaction shapes (the dense work being measured) are the paper's.
    for model in [PaperModel::Dlrm1, PaperModel::Dlrm6] {
        let config = model.config().with_rows_per_table(4096);
        let points = runner.functional_batch_throughput(&config, &batches, &KernelBackend::all());

        let mut table = TextTable::new(
            &format!("Functional batched-inference throughput, {model} (measured)"),
            &[
                "Batch",
                "Backend",
                "Batch-major samples/s",
                "Per-sample samples/s",
                "Speedup (x)",
            ],
        );
        for p in &points {
            table.add_row(vec![
                p.batch.to_string(),
                p.backend.label().to_string(),
                format!("{:.0}", p.batch_major_sps),
                format!("{:.0}", p.per_sample_sps),
                format!("{:.2}", p.speedup()),
            ]);
        }
        table.print();
        sections.push((model.label().to_string(), points));
    }

    let borrowed: Vec<(&str, &[centaur_bench::BatchThroughputPoint])> = sections
        .iter()
        .map(|(name, points)| (name.as_str(), points.as_slice()))
        .collect();
    let json = ExperimentRunner::bench_batch_json(&borrowed);
    let path = "BENCH_batch.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
