//! Regenerates Figure 14: Centaur's inference-time breakdown (IDX / EMB /
//! DNF / MLP / Other) and its end-to-end speedup over CPU-only.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();
    let mut table = TextTable::new(
        "Figure 14: Centaur latency breakdown and speedup vs CPU-only",
        &[
            "Model",
            "Batch",
            "IDX %",
            "EMB %",
            "DNF %",
            "MLP %",
            "Other %",
            "Centaur (us)",
            "CPU-only (us)",
            "Speedup (x)",
        ],
    );
    // The full model × batch grid is simulated in parallel across cores.
    let comparisons = runner.compare_matrix(&PaperModel::all(), &ExperimentRunner::batch_sizes());
    for cmp in &comparisons {
        let b = &cmp.centaur.breakdown;
        let total = cmp.centaur.total_ns();
        let pct = |x: f64| format!("{:.1}", x / total * 100.0);
        table.add_row(vec![
            cmp.model.label().to_string(),
            cmp.batch.to_string(),
            pct(b.index_fetch_ns),
            pct(b.embedding_ns),
            pct(b.dense_feature_ns),
            pct(b.mlp_ns),
            pct(b.other_ns),
            format!("{:.1}", total / 1e3),
            format!("{:.1}", cmp.cpu.total_ns() / 1e3),
            format!("{:.2}", cmp.centaur_speedup_vs_cpu()),
        ]);
    }
    table.print();

    // The MLP share above assumes the dense complex amortizes weight reads
    // over the batch; cross-check with the measured functional datapath —
    // batch-major vs per-sample execution across all kernel backends.
    let mut measured = TextTable::new(
        "Figure 14 companion: measured batch-major speedup at batch 64 (DLRM(1))",
        &[
            "Backend",
            "Batch-major samples/s",
            "Per-sample samples/s",
            "Speedup (x)",
        ],
    );
    let config = PaperModel::Dlrm1.config().with_rows_per_table(4096);
    for point in runner.functional_batch_throughput(
        &config,
        &[64],
        &centaur_dlrm::kernel::KernelBackend::all(),
    ) {
        measured.add_row(vec![
            point.backend.label().to_string(),
            format!("{:.0}", point.batch_major_sps),
            format!("{:.0}", point.per_sample_sps),
            format!("{:.2}", point.speedup()),
        ]);
    }
    measured.print();
}
