//! Regenerates Figure 14: Centaur's inference-time breakdown (IDX / EMB /
//! DNF / MLP / Other) and its end-to-end speedup over CPU-only.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();
    let mut table = TextTable::new(
        "Figure 14: Centaur latency breakdown and speedup vs CPU-only",
        &[
            "Model",
            "Batch",
            "IDX %",
            "EMB %",
            "DNF %",
            "MLP %",
            "Other %",
            "Centaur (us)",
            "CPU-only (us)",
            "Speedup (x)",
        ],
    );
    // The full model × batch grid is simulated in parallel across cores.
    let comparisons = runner.compare_matrix(&PaperModel::all(), &ExperimentRunner::batch_sizes());
    for cmp in &comparisons {
        let b = &cmp.centaur.breakdown;
        let total = cmp.centaur.total_ns();
        let pct = |x: f64| format!("{:.1}", x / total * 100.0);
        table.add_row(vec![
            cmp.model.label().to_string(),
            cmp.batch.to_string(),
            pct(b.index_fetch_ns),
            pct(b.embedding_ns),
            pct(b.dense_feature_ns),
            pct(b.mlp_ns),
            pct(b.other_ns),
            format!("{:.1}", total / 1e3),
            format!("{:.1}", cmp.cpu.total_ns() / 1e3),
            format!("{:.2}", cmp.centaur_speedup_vs_cpu()),
        ]);
    }
    table.print();
}
