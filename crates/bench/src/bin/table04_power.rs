//! Regenerates Table IV: average power consumption of the three systems.

use centaur_bench::TextTable;
use centaur_power::{PowerModel, SystemKind};

fn main() {
    let mut table = TextTable::new(
        "Table IV: power consumption",
        &["System", "Host (W)", "Device (W)", "Total (W)"],
    );
    for system in [SystemKind::CpuOnly, SystemKind::CpuGpu, SystemKind::Centaur] {
        let p = PowerModel::for_system(system);
        table.add_row(vec![
            system.label().to_string(),
            format!("{:.0}", p.host_watts),
            format!("{:.0}", p.device_watts),
            format!("{:.0}", p.total_watts()),
        ]);
    }
    table.print();
}
