//! Regenerates Figure 6: LLC miss rate (a) and MPKI (b) of the embedding
//! and MLP layers as a function of batch size.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();
    let mut table = TextTable::new(
        "Figure 6: LLC miss rate and MPKI for EMB vs MLP layers",
        &[
            "Model",
            "Batch",
            "EMB miss %",
            "MLP miss %",
            "EMB MPKI",
            "MLP MPKI",
        ],
    );
    for model in PaperModel::all() {
        for batch in ExperimentRunner::batch_sizes() {
            let p = runner.profile_cache(model, batch);
            table.add_row(vec![
                model.label().to_string(),
                batch.to_string(),
                format!("{:.1}", p.embedding.llc_miss_rate * 100.0),
                format!("{:.1}", p.mlp.llc_miss_rate * 100.0),
                format!("{:.2}", p.embedding.llc_mpki),
                format!("{:.3}", p.mlp.llc_mpki),
            ]);
        }
    }
    table.print();
}
