//! Regenerates Table I: the six recommendation-model configurations.

use centaur_bench::TextTable;
use centaur_dlrm::PaperModel;

fn main() {
    let mut table = TextTable::new(
        "Table I: recommendation model configurations",
        &[
            "Model",
            "#Tables",
            "Gathers/table",
            "Table size (MB)",
            "MLP size (KB)",
            "Embedding dim",
        ],
    );
    for model in PaperModel::all() {
        let c = model.config();
        table.add_row(vec![
            model.label().to_string(),
            c.num_tables.to_string(),
            c.lookups_per_table.to_string(),
            format!("{:.1}", c.embedding_bytes() as f64 / 1e6),
            format!("{:.1}", c.mlp_bytes() as f64 / 1e3),
            c.embedding_dim.to_string(),
        ]);
    }
    table.print();
}
