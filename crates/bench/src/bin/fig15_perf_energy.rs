//! Regenerates Figure 15: performance (a) and energy-efficiency (b) of
//! CPU-GPU, CPU-only and Centaur, normalized to CPU-GPU.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;
use centaur_power::SystemKind;

fn main() {
    let runner = ExperimentRunner::new();
    let mut table = TextTable::new(
        "Figure 15: performance and energy-efficiency normalized to CPU-GPU",
        &[
            "Model",
            "Batch",
            "Perf CPU-GPU",
            "Perf CPU-only",
            "Perf Centaur",
            "Eff CPU-GPU",
            "Eff CPU-only",
            "Eff Centaur",
        ],
    );
    // The full model × batch grid is simulated in parallel across cores.
    let comparisons = runner.compare_matrix(&PaperModel::all(), &ExperimentRunner::batch_sizes());
    for cmp in &comparisons {
        table.add_row(vec![
            cmp.model.label().to_string(),
            cmp.batch.to_string(),
            format!("{:.2}", cmp.performance_vs_cpu_gpu(SystemKind::CpuGpu)),
            format!("{:.2}", cmp.performance_vs_cpu_gpu(SystemKind::CpuOnly)),
            format!("{:.2}", cmp.performance_vs_cpu_gpu(SystemKind::Centaur)),
            format!("{:.2}", cmp.efficiency_vs_cpu_gpu(SystemKind::CpuGpu)),
            format!("{:.2}", cmp.efficiency_vs_cpu_gpu(SystemKind::CpuOnly)),
            format!("{:.2}", cmp.efficiency_vs_cpu_gpu(SystemKind::Centaur)),
        ]);
    }
    table.print();

    // Summary line: the paper's headline range vs CPU-only.
    let mut speedups = Vec::new();
    let mut efficiencies = Vec::new();
    for cmp in &comparisons {
        speedups.push(cmp.centaur_speedup_vs_cpu());
        efficiencies.push(
            cmp.efficiency_vs_cpu_gpu(SystemKind::Centaur)
                / cmp.efficiency_vs_cpu_gpu(SystemKind::CpuOnly),
        );
    }
    let minmax = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::MAX, f64::min),
            v.iter().cloned().fold(0.0_f64, f64::max),
        )
    };
    let (smin, smax) = minmax(&speedups);
    let (emin, emax) = minmax(&efficiencies);
    println!("Centaur vs CPU-only: speedup {smin:.1}-{smax:.1}x (paper: 1.7-17.2x)");
    println!("Centaur vs CPU-only: energy-efficiency {emin:.1}-{emax:.1}x (paper: 1.7-19.5x)");

    // Measured on the functional datapath: the batch-major execution the
    // performance model assumes, vs the per-sample loop it replaced.
    let config = PaperModel::Dlrm1.config().with_rows_per_table(4096);
    if let Some(p) = runner
        .functional_batch_throughput(
            &config,
            &[64],
            &[centaur_dlrm::kernel::KernelBackend::Blocked],
        )
        .first()
    {
        println!(
            "Measured batch-major inference at batch 64 (Blocked): {:.0} samples/s, \
             {:.2}x over the per-sample loop",
            p.batch_major_sps,
            p.speedup()
        );
    }
}
