//! Regenerates Table III: per-module (sparse vs dense) FPGA resource usage.

use centaur::fpga::{ComplexKind, ResourceReport};
use centaur_bench::TextTable;

fn main() {
    let report = ResourceReport::harpv2_centaur();
    let mut table = TextTable::new(
        "Table III: sparse vs dense FPGA resource usage",
        &[
            "Complex",
            "Module",
            "LC comb.",
            "LC reg.",
            "Blk. Mem (bits)",
            "DSP",
        ],
    );
    for module in &report.modules {
        let complex = match module.complex {
            ComplexKind::Sparse => "Sparse",
            ComplexKind::Dense => "Dense",
            ComplexKind::Other => "Others",
        };
        table.add_row(vec![
            complex.to_string(),
            module.name.to_string(),
            module.lc_comb.to_string(),
            module.lc_reg.to_string(),
            module.block_mem_bits.to_string(),
            module.dsps.to_string(),
        ]);
    }
    for complex in [ComplexKind::Sparse, ComplexKind::Dense] {
        let name = if complex == ComplexKind::Sparse {
            "Sparse total"
        } else {
            "Dense total"
        };
        table.add_row(vec![
            name.to_string(),
            "-".to_string(),
            report.lc_comb_of(complex).to_string(),
            "-".to_string(),
            report.block_mem_of(complex).to_string(),
            report.dsps_of(complex).to_string(),
        ]);
    }
    table.print();
}
