//! Regenerates Figure 13: Centaur's effective gather bandwidth and its
//! improvement over CPU-only — (a) per model/batch, (b) swept over total
//! lookups per table.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::kernel::KernelBackend;
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();

    let mut a = TextTable::new(
        "Figure 13(a): Centaur effective gather bandwidth and improvement vs CPU-only",
        &[
            "Model",
            "Batch",
            "Centaur GB/s",
            "CPU GB/s",
            "Improvement (x)",
        ],
    );
    for model in PaperModel::all() {
        for batch in ExperimentRunner::batch_sizes() {
            let cpu = runner.run_cpu(&model.config(), batch);
            let centaur = runner.run_centaur(&model.config(), batch);
            let cpu_gbs = cpu.effective_embedding_throughput().gigabytes_per_second();
            let cen_gbs = centaur
                .effective_embedding_throughput()
                .gigabytes_per_second();
            a.add_row(vec![
                model.label().to_string(),
                batch.to_string(),
                format!("{cen_gbs:.2}"),
                format!("{cpu_gbs:.2}"),
                format!("{:.2}", cen_gbs / cpu_gbs),
            ]);
        }
    }
    a.print();

    let mut b = TextTable::new(
        "Figure 13(b): Centaur effective throughput vs total lookups per table (single-table DLRM(4))",
        &["Batch", "Total lookups/table", "Centaur GB/s", "CPU GB/s"],
    );
    for batch in ExperimentRunner::batch_sizes() {
        for point in runner.lookup_sweep(batch, &[batch, batch * 5, batch * 25, 100, 200, 400, 800])
        {
            b.add_row(vec![
                point.batch.to_string(),
                point.total_lookups_per_table.to_string(),
                format!("{:.2}", point.centaur_gbs),
                format!("{:.2}", point.cpu_gbs),
            ]);
        }
    }
    b.print();

    // Companion measurement on the *functional* datapath: the throughput
    // the paper attributes to batching only materializes when the batch
    // rides through the MLP GEMMs as m — shown here as measured samples/s
    // of the batch-major path vs the per-sample loop.
    let mut c = TextTable::new(
        "Figure 13(c): measured functional throughput, batch-major vs per-sample (DLRM(1), Blocked)",
        &["Batch", "Batch-major samples/s", "Per-sample samples/s", "Speedup (x)"],
    );
    let config = PaperModel::Dlrm1.config().with_rows_per_table(4096);
    for point in runner.functional_batch_throughput(
        &config,
        &ExperimentRunner::batch_sizes(),
        &[KernelBackend::Blocked],
    ) {
        c.add_row(vec![
            point.batch.to_string(),
            format!("{:.0}", point.batch_major_sps),
            format!("{:.0}", point.per_sample_sps),
            format!("{:.2}", point.speedup()),
        ]);
    }
    c.print();
}
