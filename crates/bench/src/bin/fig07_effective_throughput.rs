//! Regenerates Figure 7: the CPU-only effective memory throughput for
//! embedding gathers — (a) per model/batch, (b) swept over the total number
//! of lookups per table for a single-table DLRM(4) configuration.

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;

fn main() {
    let runner = ExperimentRunner::new();

    let mut a = TextTable::new(
        "Figure 7(a): CPU-only effective gather throughput (GB/s)",
        &["Model", "Batch", "Effective GB/s", "Peak GB/s"],
    );
    for model in PaperModel::all() {
        for batch in ExperimentRunner::batch_sizes() {
            let r = runner.run_cpu(&model.config(), batch);
            a.add_row(vec![
                model.label().to_string(),
                batch.to_string(),
                format!(
                    "{:.2}",
                    r.effective_embedding_throughput().gigabytes_per_second()
                ),
                "76.8".to_string(),
            ]);
        }
    }
    a.print();

    let mut b = TextTable::new(
        "Figure 7(b): CPU-only effective throughput vs total lookups per table (single-table DLRM(4))",
        &["Batch", "Total lookups/table", "CPU GB/s"],
    );
    for batch in ExperimentRunner::batch_sizes() {
        for point in runner.lookup_sweep(batch, &[batch, batch * 5, batch * 25, 100, 200, 400, 800])
        {
            b.add_row(vec![
                point.batch.to_string(),
                point.total_lookups_per_table.to_string(),
                format!("{:.2}", point.cpu_gbs),
            ]);
        }
    }
    b.print();
}
