//! Ablation study (Section VII of the paper): how Centaur's end-to-end
//! latency and effective gather bandwidth scale as the CPU↔FPGA link moves
//! from HARPv2's 28.8 GB/s coherent links to future high-bandwidth,
//! cache-bypassing chiplet signalling (hundreds of GB/s), and where the
//! next bottleneck (the EB-RU reduction throughput) appears.

use centaur::{CentaurConfig, CentaurSystem};
use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;
use centaur_workload::{IndexDistribution, RequestGenerator};

fn main() {
    let runner = ExperimentRunner::new();
    let model = PaperModel::Dlrm4;
    let batch = 64;
    let cpu = runner.run_cpu(&model.config(), batch);

    let mut generator =
        RequestGenerator::new(&model.config(), IndexDistribution::Uniform, 0xC0FFEE);
    let trace = generator.inference_trace(batch);

    let mut table = TextTable::new(
        "Ablation: CPU<->FPGA link bandwidth scaling (DLRM(4), batch 64)",
        &[
            "Design point",
            "Link GB/s (theoretical)",
            "Gather GB/s (achieved)",
            "EMB (us)",
            "Total (us)",
            "Speedup vs CPU-only",
        ],
    );

    // HARPv2 proof-of-concept (cache-coherent path).
    let harp = CentaurSystem::harpv2().simulate(&trace);
    table.add_row(vec![
        "HARPv2 (paper)".into(),
        format!(
            "{:.1}",
            CentaurConfig::harpv2().link.theoretical_bandwidth_gbs()
        ),
        format!(
            "{:.1}",
            harp.effective_embedding_throughput().gigabytes_per_second()
        ),
        format!("{:.1}", harp.breakdown.embedding_ns / 1e3),
        format!("{:.1}", harp.total_ns() / 1e3),
        format!("{:.2}", harp.speedup_over(cpu.total_ns())),
    ]);

    // Future chiplet packages with cache-bypassing gather paths.
    for bandwidth in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let config = CentaurConfig::future_chiplet(bandwidth);
        let result = CentaurSystem::new(config).simulate(&trace);
        table.add_row(vec![
            format!("cache-bypass chiplet {bandwidth:.0} GB/s"),
            format!("{bandwidth:.0}"),
            format!(
                "{:.1}",
                result
                    .effective_embedding_throughput()
                    .gigabytes_per_second()
            ),
            format!("{:.1}", result.breakdown.embedding_ns / 1e3),
            format!("{:.1}", result.total_ns() / 1e3),
            format!("{:.2}", result.speedup_over(cpu.total_ns())),
        ]);
    }
    table.print();
    println!(
        "Note: beyond ~200 GB/s the EB-RU's reduction throughput (32 ALUs @ 200 MHz\n\
         = 25.6 GB/s of embedding data) becomes the bottleneck — the co-design point\n\
         the paper's Section VII identifies for future chiplet-based CPU+FPGAs."
    );
}
