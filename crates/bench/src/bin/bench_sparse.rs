//! Measures the sparse engine in isolation: `EmbeddingBag` gather-reduce
//! throughput (the model's sparse frontend, whose scalar arm is exactly
//! the PR 2 baseline loop) across sparse backends, batch sizes and index
//! distributions (uniform worst-case vs production-like Zipfian skew),
//! prints the table with the hot-row cache model's hit rates and writes
//! the machine-readable `BENCH_sparse.json` tracked for the performance
//! trajectory.
//!
//! The workload is the paper's gather-heavy DLRM(1) (5 tables × 20
//! lookups/sample) with 64 K-row tables — large enough that uniform gathers
//! spill every private cache, while the Zipfian head exercises the hot-row
//! reuse the EB-Streamer's cache model is built for. The scalar backend is
//! the PR 2 baseline the speedup column is measured against.
//!
//! `CRITERION_QUICK=1` collapses the measurement to a smoke run (used by
//! CI, where the numbers only need to exist, not to be stable).

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::{PaperModel, SparseBackend};
use centaur_workload::IndexDistribution;

fn main() {
    let runner = ExperimentRunner::new();
    let model = PaperModel::Dlrm1;
    let config = model.config().with_rows_per_table(65_536);
    let batches = [16usize, 64, 128];
    let distributions = [
        IndexDistribution::Uniform,
        IndexDistribution::production_skew(),
    ];
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
    let points = runner.sparse_gather_throughput_with(
        &config,
        &batches,
        &SparseBackend::all(),
        &distributions,
        quick,
    );

    let mut table = TextTable::new(
        &format!("Sparse gather-reduce throughput, {model} @ 64K rows/table (measured)"),
        &[
            "Distribution",
            "Batch",
            "Backend",
            "Samples/s",
            "Streamer samples/s",
            "Streamer ns/lookup",
            "Cache hit rate",
            "Speedup vs scalar",
        ],
    );
    for p in &points {
        let scalar = points
            .iter()
            .find(|q| {
                q.batch == p.batch
                    && q.distribution == p.distribution
                    && q.backend == SparseBackend::Scalar
            })
            .map_or(0.0, |q| q.samples_per_sec);
        table.add_row(vec![
            p.distribution.clone(),
            p.batch.to_string(),
            p.backend.label().to_string(),
            format!("{:.0}", p.samples_per_sec),
            format!("{:.0}", p.streamer_samples_per_sec),
            format!(
                "{:.2}",
                p.streamer_overhead_ns_per_lookup(config.lookups_per_sample())
            ),
            format!("{:.1}%", p.cache_hit_rate * 100.0),
            if scalar > 0.0 {
                format!("{:.2}", p.samples_per_sec / scalar)
            } else {
                "-".to_string()
            },
        ]);
    }
    table.print();

    let json = ExperimentRunner::bench_sparse_json(model.label(), &points);
    let path = "BENCH_sparse.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
