//! Regenerates Table II: Centaur's FPGA resource utilization on the Arria
//! 10 GX1150.

use centaur::fpga::{FpgaResources, ResourceReport};
use centaur_bench::TextTable;

fn main() {
    let report = ResourceReport::harpv2_centaur();
    let device = FpgaResources::arria10_gx1150();
    let total = report.total;
    let util = report.utilization();

    let mut table = TextTable::new(
        "Table II: Centaur FPGA resource utilization (Arria 10 GX1150)",
        &["Row", "ALM", "Blk. Mem (bits)", "RAM Blk.", "DSP", "PLL"],
    );
    table.add_row(vec![
        "GX1150 (Max)".into(),
        device.alms.to_string(),
        device.block_mem_bits.to_string(),
        device.ram_blocks.to_string(),
        device.dsps.to_string(),
        device.plls.to_string(),
    ]);
    table.add_row(vec![
        "Centaur".into(),
        total.alms.to_string(),
        total.block_mem_bits.to_string(),
        total.ram_blocks.to_string(),
        total.dsps.to_string(),
        total.plls.to_string(),
    ]);
    table.add_row(vec![
        "Utilization [%]".into(),
        format!("{:.1}", util.alms * 100.0),
        format!("{:.1}", util.block_mem_bits * 100.0),
        format!("{:.1}", util.ram_blocks * 100.0),
        format!("{:.1}", util.dsps * 100.0),
        format!("{:.1}", util.plls * 100.0),
    ]);
    table.print();
}
