//! Measures the serving layer under load: an open-loop Poisson query stream
//! replayed against a pool of `CentaurRuntime` replica shards behind the
//! dynamic batcher, across offered QPS × batching policy × replica count —
//! the RecNMP/MicroRec-style at-load evaluation (p50/p95/p99 versus offered
//! load) for this repo's functional datapath. Writes the machine-readable
//! `BENCH_serve.json` tracked for the performance trajectory.
//!
//! The offered loads are anchored on a measured batch-1 FIFO saturation
//! capacity (single replica): one point comfortably below the knee
//! (~0.5×) and one past it (~1.5×), where the un-batched baseline's queue
//! grows without bound while dynamic batching rides the batch-major
//! throughput curve and keeps the tail flat.
//!
//! `CRITERION_QUICK=1` shrinks the offered windows to a smoke run (used by
//! CI, where the numbers only need to exist, not to be stable).

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;
use centaur_serve::BatchPolicy;

fn main() {
    let runner = ExperimentRunner::new();
    let model = PaperModel::Dlrm1;
    let config = model.config().with_rows_per_table(65_536);
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");

    let capacity = runner.serve_fifo_capacity_qps(&config);
    let offered = [
        (capacity * 0.5).max(500.0).round(),
        (capacity * 1.5).max(1_500.0).round(),
    ];
    let policies = [BatchPolicy::Fifo, BatchPolicy::dynamic_wave()];
    let replicas = [1usize, 2];
    let (duration_s, max_queries) = if quick { (0.05, 4_000) } else { (0.5, 40_000) };

    println!(
        "measured batch-1 FIFO capacity: {capacity:.0} qps; offering {:.0} and {:.0} qps",
        offered[0], offered[1]
    );
    let reports = runner.serve_latency_sweep(
        &config,
        &offered,
        &policies,
        &replicas,
        duration_s,
        max_queries,
    );

    let mut table = TextTable::new(
        &format!("Serving under load, {model} @ 64K rows/table (measured, open-loop)"),
        &[
            "Offered qps",
            "Policy",
            "Replicas",
            "Achieved qps",
            "Mean batch",
            "mean ms",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p99.9 ms",
        ],
    );
    for r in &reports {
        table.add_row(vec![
            format!("{:.0}", r.offered_qps),
            r.policy.clone(),
            r.replicas.to_string(),
            format!("{:.0}", r.achieved_qps),
            format!("{:.2}", r.mean_batch),
            format!("{:.3}", r.latency.mean_s * 1e3),
            format!("{:.3}", r.latency.p50_s * 1e3),
            format!("{:.3}", r.latency.p95_s * 1e3),
            format!("{:.3}", r.latency.p99_s * 1e3),
            format!("{:.3}", r.latency.p999_s * 1e3),
        ]);
    }
    table.print();

    let json = ExperimentRunner::bench_serve_json(model.label(), capacity, &reports);
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
