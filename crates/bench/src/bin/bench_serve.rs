//! Measures the serving layer under load: an open-loop shaped query stream
//! replayed against a pool of `CentaurRuntime` replica shards behind the
//! dynamic batcher — the RecNMP/MicroRec-style at-load evaluation
//! (p50/p95/p99 versus offered load) for this repo's functional datapath.
//! Writes the machine-readable `BENCH_serve.json` tracked for the
//! performance trajectory.
//!
//! Five sweeps share the document:
//!
//! 1. the **latency sweep** — offered QPS × batching policy × replica
//!    count under stationary Poisson arrivals, loads anchored on a measured
//!    batch-1 FIFO saturation capacity (~0.5× and ~1.5× the knee);
//! 2. the **overload sweep** — traffic shape (poisson / bursty / on-off) ×
//!    load (1.0×, 1.5×, 2.0× the knee) × serving variant, comparing an
//!    unprotected dynamic-batching baseline against admission control +
//!    dequeue shedding + deadline-aware dispatch, scored on
//!    **goodput-under-SLO** (completions inside the SLO per second) — the
//!    metric that keeps meaning past saturation, where raw qps counts
//!    answers nobody can use;
//! 3. the **availability sweep** — seeded fault plan (crashes / stalls /
//!    transient datapath errors) × load × serving variant against a
//!    2-replica **supervised** pool: crashed workers' in-flight batches are
//!    recovered and requeued with their original arrival stamps, replicas
//!    restart against a pool-wide budget, and each cell reports
//!    availability (completed / accepted), restarts, retries and
//!    per-reason rejections;
//! 4. the **isolation sweep** — a multi-tenant mix (default a light
//!    DLRM(1) tenant at 0.7 share and a heavy DLRM(6) tenant at 0.3)
//!    served by **isolated** per-tenant pools (own EDF queue, own SLO /
//!    admission / supervision / fault budgets) versus one
//!    **shared-everything** pool (single FIFO queue, pooled replicas,
//!    merged budgets), under a fault-free baseline and a stressed cell
//!    that pins the heavy tenant at 2× its pooled capacity with
//!    heavy-tailed arrivals and a crash plan targeting its pool — the
//!    light tenant's availability and p99 should not move when pools are
//!    isolated, and measurably degrade when everything is shared.
//! 5. the **tail-under-stall sweep** — a slow-replica plan (a 200 ms
//!    mid-replay stall, then a persistent 4× `degraded` slowdown) × load ×
//!    {unhedged, hedged} against the same 2-replica supervised pool: the
//!    unhedged variant rides out the straggler with nothing but the crash
//!    supervisor (its riders eat the whole stall, so the p99 tracks the
//!    fault), while the hedged variant arms the stall watchdog — overdue
//!    batches are re-dispatched to a healthy sibling (first result wins,
//!    duplicates suppressed) and repeat offenders are quarantined with
//!    exponential-backoff re-admission — and its p99 should stay within a
//!    small factor of the fault-free baseline. Each cell reports hedges,
//!    hedge wins, duplicates suppressed, quarantines and re-admissions.
//!
//! The SLO defaults to 5 ms and reads `CENTAUR_SERVE_SLO_MS`; the admission
//! depth defaults to one SLO's worth of work at capacity and reads
//! `CENTAUR_SERVE_QUEUE_DEPTH`. The supervision budgets read
//! `CENTAUR_SERVE_RETRY_LIMIT` / `CENTAUR_SERVE_RESTART_BUDGET` (defaults
//! 2 / 2), and `CENTAUR_SERVE_FAULT_PLAN` pins an explicit fault schedule
//! on every faulted cell in place of the seeded ones. The hedge timeout of
//! the tail sweep reads `CENTAUR_SERVE_HEDGE_MS` (default derived from the
//! SLO and the policy's service estimate) and the quarantine tuning reads
//! `CENTAUR_SERVE_QUARANTINE_STRIKES` / `CENTAUR_SERVE_QUARANTINE_BACKOFF_MS`
//! (defaults 3 strikes / 25 ms doubling). The tenant mix reads
//! `CENTAUR_SERVE_MIX` (`model:share` pairs summing to 1) and per-tenant
//! SLOs read `CENTAUR_SERVE_MIX_SLO_MS` (one positive millisecond value
//! per tenant; default scales the base SLO by each model's relative
//! per-sample cost and by the tenant count, since co-located pools
//! time-share the host).
//!
//! `CRITERION_QUICK=1` shrinks the offered windows to a smoke run (used by
//! CI, where the numbers only need to exist, not to be stable).

use centaur_bench::{ExperimentRunner, TextTable};
use centaur_dlrm::PaperModel;
use centaur_serve::{BatchPolicy, FaultSpec, ServeOptions, Supervision};
use centaur_workload::TrafficShape;
use std::time::Duration;

fn main() {
    let runner = ExperimentRunner::new();
    let model = PaperModel::Dlrm1;
    let config = model.config().with_rows_per_table(65_536);
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");

    let capacity = runner.serve_fifo_capacity_qps(&config);
    let offered = [
        (capacity * 0.5).max(500.0).round(),
        (capacity * 1.5).max(1_500.0).round(),
    ];
    let policies = [BatchPolicy::Fifo, BatchPolicy::dynamic_wave()];
    let replicas = [1usize, 2];
    let (duration_s, max_queries) = if quick { (0.05, 4_000) } else { (0.5, 40_000) };

    println!(
        "measured batch-1 FIFO capacity: {capacity:.0} qps; offering {:.0} and {:.0} qps",
        offered[0], offered[1]
    );
    let mut reports = runner.serve_latency_sweep(
        &config,
        &offered,
        &policies,
        &replicas,
        duration_s,
        max_queries,
    );

    let mut table = TextTable::new(
        &format!("Serving under load, {model} @ 64K rows/table (measured, open-loop)"),
        &[
            "Offered qps",
            "Policy",
            "Replicas",
            "Achieved qps",
            "Mean batch",
            "mean ms",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p99.9 ms",
        ],
    );
    for r in &reports {
        table.add_row(vec![
            format!("{:.0}", r.offered_qps),
            r.policy.clone(),
            r.replicas.to_string(),
            format!("{:.0}", r.achieved_qps),
            format!("{:.2}", r.mean_batch),
            format!("{:.3}", r.latency.mean_s * 1e3),
            format!("{:.3}", r.latency.p50_s * 1e3),
            format!("{:.3}", r.latency.p95_s * 1e3),
            format!("{:.3}", r.latency.p99_s * 1e3),
            format!("{:.3}", r.latency.p999_s * 1e3),
        ]);
    }
    table.print();

    // Overload sweep: shaped traffic at and past the knee, unprotected
    // baseline versus full overload protection under the same SLO.
    let slo_ms = centaur_serve::serve_slo_ms();
    let slo = Duration::from_secs_f64(slo_ms * 1e-3);
    // One SLO's worth of queue at capacity: anything deeper is guaranteed
    // to finish late, so admitting it can only waste accelerator time.
    let depth =
        centaur_serve::serve_queue_depth().unwrap_or(((capacity * slo_ms * 1e-3) as usize).max(64));
    // Conservative per-batch service estimate for deadline-aware dispatch:
    // a full wave at the measured batch-1 rate (batching is faster, so the
    // policy errs toward dispatching early rather than expiring requests).
    let service_estimate =
        Duration::from_secs_f64(centaur::BATCH_WAVE_SAMPLES as f64 / capacity.max(1.0));
    let variants = [
        (BatchPolicy::dynamic_wave(), ServeOptions::with_slo(slo)),
        (
            BatchPolicy::deadline_wave(service_estimate),
            ServeOptions::overload_protected(slo, depth),
        ),
    ];
    let shapes = [
        TrafficShape::Poisson,
        TrafficShape::Bursty,
        TrafficShape::OnOff,
    ];
    let multipliers = [1.0, 1.5, 2.0];
    // Overload cells need a longer window than the latency sweep: bursty
    // shapes only collapse an unprotected baseline once sustained overload
    // has accumulated backlog across several dwell cycles.
    let (overload_duration_s, overload_max_queries) =
        if quick { (0.05, 4_000) } else { (0.5, 120_000) };
    println!(
        "overload sweep: SLO {slo_ms:.1} ms, admission depth {depth}, \
         service estimate {:.0} us",
        service_estimate.as_secs_f64() * 1e6
    );
    let overload = runner.serve_overload_sweep(
        &config,
        capacity,
        &shapes,
        &multipliers,
        &variants,
        1,
        overload_duration_s,
        overload_max_queries,
    );

    let mut table = TextTable::new(
        &format!("Goodput under a {slo_ms:.1} ms SLO, {model} @ 64K rows/table (measured)"),
        &[
            "Traffic",
            "Offered qps",
            "Policy",
            "Goodput qps",
            "Achieved qps",
            "Shed",
            "Late",
            "p99 ms",
        ],
    );
    for r in &overload {
        table.add_row(vec![
            r.traffic.clone(),
            format!("{:.0}", r.offered_qps),
            r.policy.clone(),
            format!("{:.0}", r.goodput_qps),
            format!("{:.0}", r.achieved_qps),
            r.shed.to_string(),
            r.deadline_misses.to_string(),
            format!("{:.3}", r.latency.p99_s * 1e3),
        ]);
    }
    table.print();

    reports.extend(overload);

    // Availability sweep: the same goodput instrument pointed at faults —
    // a supervised 2-replica pool rides out seeded crash/stall/transient
    // schedules while the budgets bound retries and restarts.
    let supervision = Supervision::new(
        centaur_serve::serve_retry_limit(),
        centaur_serve::serve_restart_budget(),
    );
    let fault_variants = [
        (
            BatchPolicy::dynamic_wave(),
            ServeOptions::with_slo(slo).supervised(supervision),
        ),
        (
            BatchPolicy::deadline_wave(service_estimate),
            ServeOptions::overload_protected(slo, depth).supervised(supervision),
        ),
    ];
    let fault_specs = [
        FaultSpec::none(),
        FaultSpec::crashes(1).with_seed(42),
        FaultSpec::crashes(1)
            .with_stalls(1)
            .with_transients(2)
            .with_stall_ms(2)
            .with_seed(42),
    ];
    let fault_loads = [0.7, 1.0];
    println!(
        "availability sweep: supervision retry limit {}, restart budget {}",
        supervision.retry_limit, supervision.restart_budget
    );
    let availability = runner.serve_availability_sweep(
        &config,
        capacity,
        &fault_specs,
        &fault_loads,
        &fault_variants,
        2,
        overload_duration_s,
        overload_max_queries,
    );

    let mut table = TextTable::new(
        &format!("Availability under injected faults, {model} @ 64K rows/table (measured, 2 supervised replicas)"),
        &[
            "Faults",
            "Offered qps",
            "Policy",
            "Availability",
            "Goodput qps",
            "Restarts",
            "Retries",
            "Failed",
            "Shed",
        ],
    );
    for r in &availability {
        table.add_row(vec![
            r.faults.clone(),
            format!("{:.0}", r.offered_qps),
            r.policy.clone(),
            format!("{:.4}", r.availability),
            format!("{:.0}", r.goodput_qps),
            r.restarts.to_string(),
            r.retries.to_string(),
            r.failed.to_string(),
            r.shed.to_string(),
        ]);
    }
    table.print();

    reports.extend(availability);

    // Tail-under-stall sweep: the same instrument pointed at *slow* (not
    // crashed) replicas — a 200 ms mid-replay stall and a persistent 4×
    // degradation — with the watchdog + hedging + quarantine machinery off
    // (unhedged) and on (hedged). Rows alternate unhedged then hedged per
    // `plan × load` cell; the hedge/quarantine columns tell them apart.
    let tail_policy = BatchPolicy::dynamic_wave();
    let tail_variants = [
        (
            tail_policy,
            ServeOptions::with_slo(slo).supervised(supervision),
        ),
        (
            tail_policy,
            ServeOptions::with_slo(slo)
                .supervised(supervision)
                .hedged(centaur_serve::HedgeConfig::derived(Some(slo), tail_policy)),
        ),
    ];
    let tail_specs = [
        FaultSpec::none(),
        FaultSpec::none()
            .with_stalls(1)
            .with_stall_ms(200)
            .with_seed(42),
        FaultSpec::none()
            .with_degraded(1)
            .with_degrade_factor(4)
            .with_seed(42),
    ];
    let tail_loads = [0.7, 1.0];
    println!(
        "tail sweep: hedge timeout {:.3} ms (derived), quarantine after {} strikes, \
         backoff {:.1} ms",
        centaur_serve::HedgeConfig::derived(Some(slo), tail_policy)
            .timeout
            .as_secs_f64()
            * 1e3,
        centaur_serve::serve_quarantine_strikes(),
        centaur_serve::serve_quarantine_backoff_ms(),
    );
    // A single 200 ms stall parks exactly one batch of ~64 riders. On this
    // host one replica's dynamic capacity ≈ the pool's, so the stall never
    // starves the queue — the tail signal IS those riders, and in a
    // 10^5-query window they fall past the p99 rank and vanish. Cap the
    // cell so one stalled batch sits above the 1 % rank (64 of 4 000).
    let tail_max_queries = overload_max_queries.min(4_000);
    let tail = runner.serve_availability_sweep(
        &config,
        capacity,
        &tail_specs,
        &tail_loads,
        &tail_variants,
        2,
        overload_duration_s,
        tail_max_queries,
    );

    let mut table = TextTable::new(
        &format!("Tail latency under slow replicas, {model} @ 64K rows/table (measured, 2 supervised replicas)"),
        &[
            "Faults",
            "Offered qps",
            "Variant",
            "Availability",
            "p99 ms",
            "Hedges",
            "Wins",
            "Dups",
            "Quarantines",
            "Readmits",
        ],
    );
    for (i, r) in tail.iter().enumerate() {
        table.add_row(vec![
            r.faults.clone(),
            format!("{:.0}", r.offered_qps),
            if i % 2 == 0 { "unhedged" } else { "hedged" }.to_string(),
            format!("{:.4}", r.availability),
            format!("{:.3}", r.latency.p99_s * 1e3),
            r.hedges.to_string(),
            r.hedge_wins.to_string(),
            r.duplicates_suppressed.to_string(),
            r.quarantines.to_string(),
            r.readmissions.to_string(),
        ]);
    }
    table.print();

    reports.extend(tail);

    // Isolation sweep: the multi-tenant mix, isolated per-tenant pools
    // versus one shared-everything pool, fault-free baseline versus heavy
    // tenant stressed (2× its pooled capacity, heavy-tailed arrivals, crash
    // plan on its pool). Rows group [baseline isolated, baseline shared,
    // stressed isolated, stressed shared], one row per tenant.
    println!("isolation sweep: multi-tenant mix, isolated vs shared pools");
    let isolation = runner.serve_isolation_sweep(65_536, overload_duration_s, overload_max_queries);
    let scenarios = ["baseline", "baseline", "stressed", "stressed"];
    let tenants_per_cell = isolation.len() / 4;

    let mut table = TextTable::new(
        "Cross-pool isolation, per-tenant SLOs (measured, supervised pools)",
        &[
            "Scenario",
            "Tenant",
            "Pool",
            "Traffic",
            "Faults",
            "Offered qps",
            "Availability",
            "Goodput qps",
            "Shed",
            "Failed",
            "p99 ms",
        ],
    );
    for (i, r) in isolation.iter().enumerate() {
        table.add_row(vec![
            scenarios[(i / tenants_per_cell).min(3)].to_string(),
            r.tenant.clone(),
            r.pool.clone(),
            r.traffic.clone(),
            r.faults.clone(),
            format!("{:.0}", r.offered_qps),
            format!("{:.4}", r.availability),
            format!("{:.0}", r.goodput_qps),
            r.shed.to_string(),
            r.failed.to_string(),
            format!("{:.3}", r.latency.p99_s * 1e3),
        ]);
    }
    table.print();

    reports.extend(isolation);
    let json = ExperimentRunner::bench_serve_json(model.label(), capacity, &reports);
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
