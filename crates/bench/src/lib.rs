//! # centaur-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Centaur paper's evaluation from the workspace's system simulators.
//!
//! Each `fig*`/`table*` binary in `src/bin/` prints the rows/series of the
//! corresponding paper artifact; [`runner`] holds the shared sweep logic and
//! [`report`] the plain-text table / CSV emitters. Run the binaries in
//! release mode, e.g.:
//!
//! ```text
//! cargo run --release -p centaur-bench --bin fig14_speedup_breakdown
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod runner;
pub mod schema;

pub use report::TextTable;
pub use runner::{
    BatchSweepPoint, BatchThroughputPoint, ExperimentRunner, SparseThroughputPoint,
    SystemComparison,
};
