//! Plain-text table and CSV emitters for the experiment binaries.

/// A simple fixed-width text table with a CSV dump, used by every
//  experiment binary so the output is both human-readable and greppable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the text rendering followed by the CSV rendering.
    pub fn print(&self) {
        println!("{}", self.to_text());
        println!("--- CSV ---\n{}", self.to_csv());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut t = TextTable::new("Demo", &["model", "batch", "speedup"]);
        t.add_row(vec!["DLRM(1)".into(), "1".into(), "6.41".into()]);
        t.add_row(vec!["DLRM(4)".into(), "128".into(), "0.67".into()]);
        let text = t.to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("DLRM(1)"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("model,batch,speedup"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("Demo", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }
}
