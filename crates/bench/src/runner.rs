//! Shared experiment-sweep logic used by every figure/table binary and by
//! the workspace integration tests.

use centaur::{CentaurInferenceResult, CentaurSystem};
use centaur_cpusim::{CacheProfile, CacheProfiler, CpuConfig, CpuInferenceResult, CpuSystem};
use centaur_dlrm::config::{ModelConfig, PaperModel};
use centaur_gpusim::{CpuGpuInferenceResult, CpuGpuSystem};
use centaur_power::{EnergyReport, SystemKind};
use centaur_workload::{IndexDistribution, RequestGenerator};

/// Results of running all three systems on the same request.
#[derive(Debug, Clone)]
pub struct SystemComparison {
    /// Which paper model was run.
    pub model: PaperModel,
    /// Batch size of the request.
    pub batch: usize,
    /// CPU-only result.
    pub cpu: CpuInferenceResult,
    /// CPU-GPU result.
    pub cpu_gpu: CpuGpuInferenceResult,
    /// Centaur result.
    pub centaur: CentaurInferenceResult,
}

impl SystemComparison {
    /// Latency of a given system in nanoseconds.
    pub fn latency_ns(&self, system: SystemKind) -> f64 {
        match system {
            SystemKind::CpuOnly => self.cpu.total_ns(),
            SystemKind::CpuGpu => self.cpu_gpu.total_ns(),
            SystemKind::Centaur => self.centaur.total_ns(),
        }
    }

    /// Energy report of a given system.
    pub fn energy(&self, system: SystemKind) -> EnergyReport {
        EnergyReport::from_latency(system, self.latency_ns(system))
    }

    /// Centaur's end-to-end speedup over CPU-only (Figure 14's right axis).
    pub fn centaur_speedup_vs_cpu(&self) -> f64 {
        self.centaur.speedup_over(self.cpu.total_ns())
    }

    /// Performance of `system` normalized to CPU-GPU (Figure 15(a)).
    pub fn performance_vs_cpu_gpu(&self, system: SystemKind) -> f64 {
        self.energy(system)
            .performance_vs(&self.energy(SystemKind::CpuGpu))
    }

    /// Energy-efficiency of `system` normalized to CPU-GPU (Figure 15(b)).
    pub fn efficiency_vs_cpu_gpu(&self, system: SystemKind) -> f64 {
        self.energy(system)
            .efficiency_vs(&self.energy(SystemKind::CpuGpu))
    }
}

/// A single point of a lookup-count sweep (Figures 7(b) and 13(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSweepPoint {
    /// Batch size.
    pub batch: usize,
    /// Total lookups per table for the request.
    pub total_lookups_per_table: usize,
    /// CPU-only effective gather throughput in GB/s.
    pub cpu_gbs: f64,
    /// Centaur effective gather throughput in GB/s.
    pub centaur_gbs: f64,
}

/// Drives the three system simulators over the paper's workloads with
/// deterministic seeds and consistent warm-up.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    seed: u64,
    distribution: IndexDistribution,
}

impl ExperimentRunner {
    /// Creates a runner with the default (uniform-locality) workload and a
    /// fixed seed.
    pub fn new() -> Self {
        ExperimentRunner {
            seed: 0xC0FFEE,
            distribution: IndexDistribution::Uniform,
        }
    }

    /// Uses a different index distribution (for locality ablations).
    pub fn with_distribution(mut self, distribution: IndexDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// The paper's batch-size sweep.
    pub fn batch_sizes() -> [usize; 6] {
        PaperModel::paper_batch_sizes()
    }

    fn traces(
        &self,
        config: &ModelConfig,
        batch: usize,
    ) -> (
        centaur_dlrm::trace::InferenceTrace,
        centaur_dlrm::trace::InferenceTrace,
    ) {
        let mut warm_gen = RequestGenerator::new(config, self.distribution, self.seed ^ 0x5EED);
        let mut gen = RequestGenerator::new(config, self.distribution, self.seed);
        (warm_gen.inference_trace(batch), gen.inference_trace(batch))
    }

    /// Runs the CPU-only system on one request (after warm-up).
    pub fn run_cpu(&self, config: &ModelConfig, batch: usize) -> CpuInferenceResult {
        let (warm, trace) = self.traces(config, batch);
        let mut system = CpuSystem::broadwell();
        system.simulate_warm(&warm, &trace)
    }

    /// Runs the CPU-GPU system on one request (after warm-up).
    pub fn run_cpu_gpu(&self, config: &ModelConfig, batch: usize) -> CpuGpuInferenceResult {
        let (warm, trace) = self.traces(config, batch);
        let mut system = CpuGpuSystem::dgx1();
        system.simulate_warm(&warm, &trace)
    }

    /// Runs the Centaur system on one request.
    pub fn run_centaur(&self, config: &ModelConfig, batch: usize) -> CentaurInferenceResult {
        let (_, trace) = self.traces(config, batch);
        let mut system = CentaurSystem::harpv2();
        system.simulate(&trace)
    }

    /// Runs all three systems on the same request.
    pub fn compare(&self, model: PaperModel, batch: usize) -> SystemComparison {
        let config = model.config();
        SystemComparison {
            model,
            batch,
            cpu: self.run_cpu(&config, batch),
            cpu_gpu: self.run_cpu_gpu(&config, batch),
            centaur: self.run_centaur(&config, batch),
        }
    }

    /// Runs [`ExperimentRunner::compare`] over the full `models × batches`
    /// grid, fanned out across the host's cores with `std::thread::scope`.
    ///
    /// Every figure/table sweep is embarrassingly parallel — each cell
    /// builds its own simulator instances — so the grid is split into one
    /// contiguous chunk per worker. Results come back in grid order
    /// (models outer, batches inner), identical to the sequential loops the
    /// binaries used to run.
    pub fn compare_matrix(
        &self,
        models: &[PaperModel],
        batches: &[usize],
    ) -> Vec<SystemComparison> {
        let cells: Vec<(PaperModel, usize)> = models
            .iter()
            .flat_map(|&m| batches.iter().map(move |&b| (m, b)))
            .collect();
        self.parallel_cells(&cells, |&(model, batch)| self.compare(model, batch))
    }

    /// Maps `f` over `cells` in parallel, preserving order.
    fn parallel_cells<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(cells.len());
        if workers <= 1 {
            return cells.iter().map(&f).collect();
        }
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .chunks(chunk)
                .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect();
        });
        results.into_iter().flatten().collect()
    }

    /// Profiles the cache behaviour of one request (Figure 6).
    pub fn profile_cache(&self, model: PaperModel, batch: usize) -> CacheProfile {
        let config = model.config();
        let (warm, trace) = self.traces(&config, batch);
        CacheProfiler::profile(&CpuConfig::broadwell_xeon(), &trace, &warm)
    }

    /// Sweeps the total lookups per table for a single-table DLRM(4)-style
    /// configuration (Figures 7(b) and 13(b)), one sweep point per worker
    /// thread.
    pub fn lookup_sweep(&self, batch: usize, lookups: &[usize]) -> Vec<BatchSweepPoint> {
        let base = PaperModel::Dlrm4.config().with_num_tables(1);
        self.parallel_cells(lookups, |&total| {
            // The x-axis is the *total* lookups per table for the whole
            // batch; convert to per-sample lookups (at least one).
            let per_sample = (total / batch.max(1)).max(1);
            let config = base.with_lookups_per_table(per_sample);
            let cpu = self.run_cpu(&config, batch);
            let centaur = self.run_centaur(&config, batch);
            BatchSweepPoint {
                batch,
                total_lookups_per_table: per_sample * batch,
                cpu_gbs: cpu.effective_embedding_throughput().gigabytes_per_second(),
                centaur_gbs: centaur
                    .effective_embedding_throughput()
                    .gigabytes_per_second(),
            }
        })
    }
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        ExperimentRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_all_three_systems() {
        let runner = ExperimentRunner::new();
        let cmp = runner.compare(PaperModel::Dlrm1, 4);
        assert!(cmp.latency_ns(SystemKind::CpuOnly) > 0.0);
        assert!(cmp.latency_ns(SystemKind::CpuGpu) > 0.0);
        assert!(cmp.latency_ns(SystemKind::Centaur) > 0.0);
        assert!(cmp.centaur_speedup_vs_cpu() > 1.0);
        // Normalisation to CPU-GPU makes CPU-GPU itself exactly 1.0.
        assert!((cmp.performance_vs_cpu_gpu(SystemKind::CpuGpu) - 1.0).abs() < 1e-12);
        assert!((cmp.efficiency_vs_cpu_gpu(SystemKind::CpuGpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_sweep_is_monotonic_in_lookups_for_cpu() {
        let runner = ExperimentRunner::new();
        let points = runner.lookup_sweep(16, &[16, 128, 512]);
        assert_eq!(points.len(), 3);
        assert!(points[0].cpu_gbs <= points[2].cpu_gbs * 1.05);
        assert!(points.iter().all(|p| p.centaur_gbs > 0.0));
    }

    #[test]
    fn compare_matrix_matches_sequential_compare() {
        let runner = ExperimentRunner::new();
        let models = [PaperModel::Dlrm1, PaperModel::Dlrm3];
        let batches = [1usize, 8];
        let parallel = runner.compare_matrix(&models, &batches);
        assert_eq!(parallel.len(), 4);
        let mut i = 0;
        for &model in &models {
            for &batch in &batches {
                let seq = runner.compare(model, batch);
                assert_eq!(parallel[i].model, model);
                assert_eq!(parallel[i].batch, batch);
                assert_eq!(parallel[i].cpu.total_ns(), seq.cpu.total_ns());
                assert_eq!(parallel[i].centaur.total_ns(), seq.centaur.total_ns());
                i += 1;
            }
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let a = ExperimentRunner::new().compare(PaperModel::Dlrm3, 4);
        let b = ExperimentRunner::new().compare(PaperModel::Dlrm3, 4);
        assert_eq!(a.cpu.total_ns(), b.cpu.total_ns());
        assert_eq!(a.centaur.total_ns(), b.centaur.total_ns());
    }
}
