//! Shared experiment-sweep logic used by every figure/table binary and by
//! the workspace integration tests.

use centaur::{CentaurInferenceResult, CentaurRuntime, CentaurSystem, HotRowCache};
use centaur_cpusim::{CacheProfile, CacheProfiler, CpuConfig, CpuInferenceResult, CpuSystem};
use centaur_dlrm::config::{ModelConfig, PaperModel};
use centaur_dlrm::{DlrmModel, KernelBackend, SparseBackend};
use centaur_gpusim::{CpuGpuInferenceResult, CpuGpuSystem};
use centaur_power::{EnergyReport, SystemKind};
use centaur_workload::{IndexDistribution, RequestGenerator};
use std::time::{Duration, Instant};

/// Results of running all three systems on the same request.
#[derive(Debug, Clone)]
pub struct SystemComparison {
    /// Which paper model was run.
    pub model: PaperModel,
    /// Batch size of the request.
    pub batch: usize,
    /// CPU-only result.
    pub cpu: CpuInferenceResult,
    /// CPU-GPU result.
    pub cpu_gpu: CpuGpuInferenceResult,
    /// Centaur result.
    pub centaur: CentaurInferenceResult,
}

impl SystemComparison {
    /// Latency of a given system in nanoseconds.
    pub fn latency_ns(&self, system: SystemKind) -> f64 {
        match system {
            SystemKind::CpuOnly => self.cpu.total_ns(),
            SystemKind::CpuGpu => self.cpu_gpu.total_ns(),
            SystemKind::Centaur => self.centaur.total_ns(),
        }
    }

    /// Energy report of a given system.
    pub fn energy(&self, system: SystemKind) -> EnergyReport {
        EnergyReport::from_latency(system, self.latency_ns(system))
    }

    /// Centaur's end-to-end speedup over CPU-only (Figure 14's right axis).
    pub fn centaur_speedup_vs_cpu(&self) -> f64 {
        self.centaur.speedup_over(self.cpu.total_ns())
    }

    /// Performance of `system` normalized to CPU-GPU (Figure 15(a)).
    pub fn performance_vs_cpu_gpu(&self, system: SystemKind) -> f64 {
        self.energy(system)
            .performance_vs(&self.energy(SystemKind::CpuGpu))
    }

    /// Energy-efficiency of `system` normalized to CPU-GPU (Figure 15(b)).
    pub fn efficiency_vs_cpu_gpu(&self, system: SystemKind) -> f64 {
        self.energy(system)
            .efficiency_vs(&self.energy(SystemKind::CpuGpu))
    }
}

/// A single point of a lookup-count sweep (Figures 7(b) and 13(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSweepPoint {
    /// Batch size.
    pub batch: usize,
    /// Total lookups per table for the request.
    pub total_lookups_per_table: usize,
    /// CPU-only effective gather throughput in GB/s.
    pub cpu_gbs: f64,
    /// Centaur effective gather throughput in GB/s.
    pub centaur_gbs: f64,
}

/// Measured functional inference throughput of the accelerator datapath at
/// one batch size on one kernel backend: the batch-major path
/// (`CentaurRuntime::infer_batch`, one GEMM per MLP layer with `m = batch`)
/// against the per-sample loop (`infer_sample` once per sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchThroughputPoint {
    /// Batch size of the request.
    pub batch: usize,
    /// Kernel backend executing the dense math.
    pub backend: KernelBackend,
    /// Batch-major throughput in samples per second.
    pub batch_major_sps: f64,
    /// Per-sample-loop throughput in samples per second.
    pub per_sample_sps: f64,
}

impl BatchThroughputPoint {
    /// Batch-major speedup over the per-sample loop.
    pub fn speedup(&self) -> f64 {
        if self.per_sample_sps <= 0.0 {
            0.0
        } else {
            self.batch_major_sps / self.per_sample_sps
        }
    }
}

/// Measured throughput of the sparse gather-reduce engine at one
/// `(batch, backend, index distribution)` cell, plus the hot-row cache
/// model's observed hit rate for the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseThroughputPoint {
    /// Batch size of each request.
    pub batch: usize,
    /// Sparse backend executing the gather-reduce.
    pub backend: SparseBackend,
    /// Index-distribution label (`uniform`, `zipf(s=0.99)`, …).
    pub distribution: String,
    /// Sustained samples per second through
    /// `EmbeddingBag::reduce_batch_into_with`.
    pub samples_per_sec: f64,
    /// Sustained samples per second through the full EB-Streamer
    /// (`EbStreamer::gather_reduce_batch_into`): the same kernels plus the
    /// index-SRAM chunking, cache observation and EB-RU bookkeeping. The
    /// gap to [`SparseThroughputPoint::samples_per_sec`] is the streamer's
    /// modelling overhead per lookup.
    pub streamer_samples_per_sec: f64,
    /// Hot-row cache hit-rate estimate over the measured stream (0 on the
    /// scalar oracle, which models the uncached PR 2 pipeline).
    pub cache_hit_rate: f64,
}

impl SparseThroughputPoint {
    /// The EB-Streamer's bookkeeping overhead versus the raw bag engine,
    /// in nanoseconds per lookup. Only meaningful on the **vectorized**
    /// backends, where both paths run the same gather kernels and the gap
    /// is pure streamer bookkeeping (small negatives there are measurement
    /// noise). On `Scalar` the two columns are different engines — the
    /// bag's per-row oracle loop vs the streamer's scalar pipeline — so
    /// the large negative values it produces are an engine difference,
    /// not noise.
    pub fn streamer_overhead_ns_per_lookup(&self, lookups_per_sample: usize) -> f64 {
        if self.samples_per_sec <= 0.0 || self.streamer_samples_per_sec <= 0.0 {
            return 0.0;
        }
        let bag_ns = 1e9 / self.samples_per_sec;
        let streamer_ns = 1e9 / self.streamer_samples_per_sec;
        (streamer_ns - bag_ns) / lookups_per_sample.max(1) as f64
    }
}

/// Drives the three system simulators over the paper's workloads with
/// deterministic seeds and consistent warm-up.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    seed: u64,
    distribution: IndexDistribution,
}

impl ExperimentRunner {
    /// Creates a runner with the default (uniform-locality) workload and a
    /// fixed seed.
    pub fn new() -> Self {
        ExperimentRunner {
            seed: 0xC0FFEE,
            distribution: IndexDistribution::Uniform,
        }
    }

    /// Uses a different index distribution (for locality ablations).
    pub fn with_distribution(mut self, distribution: IndexDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// The paper's batch-size sweep.
    pub fn batch_sizes() -> [usize; 6] {
        PaperModel::paper_batch_sizes()
    }

    fn traces(
        &self,
        config: &ModelConfig,
        batch: usize,
    ) -> (
        centaur_dlrm::trace::InferenceTrace,
        centaur_dlrm::trace::InferenceTrace,
    ) {
        let mut warm_gen = RequestGenerator::new(config, self.distribution, self.seed ^ 0x5EED);
        let mut gen = RequestGenerator::new(config, self.distribution, self.seed);
        (warm_gen.inference_trace(batch), gen.inference_trace(batch))
    }

    /// Runs the CPU-only system on one request (after warm-up).
    pub fn run_cpu(&self, config: &ModelConfig, batch: usize) -> CpuInferenceResult {
        let (warm, trace) = self.traces(config, batch);
        let mut system = CpuSystem::broadwell();
        system.simulate_warm(&warm, &trace)
    }

    /// Runs the CPU-GPU system on one request (after warm-up).
    pub fn run_cpu_gpu(&self, config: &ModelConfig, batch: usize) -> CpuGpuInferenceResult {
        let (warm, trace) = self.traces(config, batch);
        let mut system = CpuGpuSystem::dgx1();
        system.simulate_warm(&warm, &trace)
    }

    /// Runs the Centaur system on one request.
    pub fn run_centaur(&self, config: &ModelConfig, batch: usize) -> CentaurInferenceResult {
        let (_, trace) = self.traces(config, batch);
        let mut system = CentaurSystem::harpv2();
        system.simulate(&trace)
    }

    /// Runs all three systems on the same request.
    pub fn compare(&self, model: PaperModel, batch: usize) -> SystemComparison {
        let config = model.config();
        SystemComparison {
            model,
            batch,
            cpu: self.run_cpu(&config, batch),
            cpu_gpu: self.run_cpu_gpu(&config, batch),
            centaur: self.run_centaur(&config, batch),
        }
    }

    /// Runs [`ExperimentRunner::compare`] over the full `models × batches`
    /// grid, fanned out across the host's cores with `std::thread::scope`.
    ///
    /// Every figure/table sweep is embarrassingly parallel — each cell
    /// builds its own simulator instances — so the grid is split into one
    /// contiguous chunk per worker. Results come back in grid order
    /// (models outer, batches inner), identical to the sequential loops the
    /// binaries used to run.
    pub fn compare_matrix(
        &self,
        models: &[PaperModel],
        batches: &[usize],
    ) -> Vec<SystemComparison> {
        let cells: Vec<(PaperModel, usize)> = models
            .iter()
            .flat_map(|&m| batches.iter().map(move |&b| (m, b)))
            .collect();
        self.parallel_cells(&cells, |&(model, batch)| self.compare(model, batch))
    }

    /// Maps `f` over `cells` in parallel, preserving order.
    fn parallel_cells<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(cells.len());
        if workers <= 1 {
            return cells.iter().map(&f).collect();
        }
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .chunks(chunk)
                .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect();
        });
        results.into_iter().flatten().collect()
    }

    /// Measures *real* functional inference throughput through the
    /// accelerator datapath (not the timing model): for every
    /// `batch × backend` cell, times `CentaurRuntime::infer_batch`
    /// (batch-major, one GEMM per MLP layer) and the equivalent
    /// per-sample `infer_sample` loop on identical inputs, after warm-up.
    ///
    /// The measurement loop is adaptive (~50 ms per cell, 3 repetitions
    /// minimum); set `CRITERION_QUICK=1` to collapse it to a smoke run.
    ///
    /// # Panics
    ///
    /// Panics when the model does not fit the accelerator or a request
    /// fails — these are fixed, known-good configurations.
    pub fn functional_batch_throughput(
        &self,
        config: &ModelConfig,
        batches: &[usize],
        backends: &[KernelBackend],
    ) -> Vec<BatchThroughputPoint> {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        self.functional_batch_throughput_with(config, batches, backends, quick)
    }

    /// [`ExperimentRunner::functional_batch_throughput`] with the
    /// measurement mode passed explicitly instead of read from the
    /// environment (tests use `quick = true` without touching process-global
    /// state).
    pub fn functional_batch_throughput_with(
        &self,
        config: &ModelConfig,
        batches: &[usize],
        backends: &[KernelBackend],
        quick: bool,
    ) -> Vec<BatchThroughputPoint> {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        let mut runtime = CentaurRuntime::harpv2(model).expect("benchmark model fits on chip");
        let mut points = Vec::with_capacity(batches.len() * backends.len());
        for &batch in batches {
            let mut generator = RequestGenerator::new(config, self.distribution, self.seed);
            let requests = request_pool(&mut generator, config, batch, BATCH_POOL_FOOTPRINT, quick);
            let mut out = vec![0.0f32; batch];
            for &backend in backends {
                runtime.set_backend(backend);
                let mut cursor = 0usize;
                let batch_major_sps = time_samples_per_sec(batch, quick, || {
                    let request = &requests[cursor % requests.len()];
                    cursor += 1;
                    runtime
                        .infer_batch_into(&request.dense, &request.sparse, &mut out)
                        .expect("batched inference succeeds");
                });
                let mut cursor = 0usize;
                let per_sample_sps = time_samples_per_sec(batch, quick, || {
                    let request = &requests[cursor % requests.len()];
                    cursor += 1;
                    for (i, indices) in request.sparse.iter().enumerate() {
                        out[i] = runtime
                            .infer_sample(request.dense.row(i), indices)
                            .expect("per-sample inference succeeds");
                    }
                });
                points.push(BatchThroughputPoint {
                    batch,
                    backend,
                    batch_major_sps,
                    per_sample_sps,
                });
            }
        }
        points
    }

    /// Measures the sparse gather-reduce engine in isolation: for every
    /// `(distribution, batch, backend)` cell, times
    /// `EmbeddingBag::reduce_batch_into_with` — the model's sparse
    /// frontend, whose scalar arm is exactly the PR 2 baseline loop — over
    /// a rotating pool of distinct requests (see [`request_pool`] for why
    /// rotation matters).
    ///
    /// The cell's hot-row cache hit rate comes from replaying the same
    /// index streams through a HARPv2-budget [`HotRowCache`]: residency is
    /// a property of the stream and the cache geometry, not of which
    /// kernel executes the reduction, so one replay serves every optimized
    /// backend of the cell (the scalar oracle models the uncached PR 2
    /// pipeline and reports 0).
    ///
    /// # Panics
    ///
    /// Panics when a request fails — these are fixed, known-good
    /// configurations.
    pub fn sparse_gather_throughput_with(
        &self,
        config: &ModelConfig,
        batches: &[usize],
        backends: &[SparseBackend],
        distributions: &[IndexDistribution],
        quick: bool,
    ) -> Vec<SparseThroughputPoint> {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        let bag = model.embeddings();
        let dim = bag.dim();
        let stride = bag.num_tables() * dim;
        let mut points = Vec::with_capacity(batches.len() * backends.len() * distributions.len());
        for &distribution in distributions {
            for &batch in batches {
                let mut generator = RequestGenerator::new(config, distribution, self.seed);
                let requests =
                    request_pool(&mut generator, config, batch, SPARSE_POOL_FOOTPRINT, quick);
                let mut cache = HotRowCache::harpv2_sized();
                for request in &requests {
                    for per_table in &request.sparse {
                        for (t, indices) in per_table.iter().enumerate() {
                            cache.observe_rows(t as u32, dim, indices);
                        }
                    }
                }
                let hit_rate = cache.hit_rate();
                let mut reduced = vec![0.0f32; batch * stride];
                let mut streamer = centaur::EbStreamer::default();
                for &backend in backends {
                    let mut cursor = 0usize;
                    let samples_per_sec = time_samples_per_sec(batch, quick, || {
                        let request = &requests[cursor % requests.len()];
                        cursor += 1;
                        bag.reduce_batch_into_with(
                            &request.sparse,
                            &mut reduced,
                            stride,
                            0,
                            backend,
                        )
                        .expect("sparse gather succeeds");
                    });
                    streamer.set_sparse_backend(backend);
                    let mut cursor = 0usize;
                    let streamer_samples_per_sec = time_samples_per_sec(batch, quick, || {
                        let request = &requests[cursor % requests.len()];
                        cursor += 1;
                        streamer
                            .gather_reduce_batch_into(bag, &request.sparse, &mut reduced, stride, 0)
                            .expect("streamer gather succeeds");
                    });
                    points.push(SparseThroughputPoint {
                        batch,
                        backend,
                        distribution: distribution.label(),
                        samples_per_sec,
                        streamer_samples_per_sec,
                        cache_hit_rate: if backend == SparseBackend::Scalar {
                            0.0
                        } else {
                            hit_rate
                        },
                    });
                }
            }
        }
        points
    }

    /// Renders sparse-stage measurements as the machine-readable
    /// `BENCH_sparse.json` document tracked for the performance trajectory:
    /// one point per `(distribution, batch, backend)` cell with samples/s
    /// and the cache hit rate, plus the per-cell speedup over the scalar
    /// oracle at the same `(distribution, batch)`.
    pub fn bench_sparse_json(model_name: &str, points: &[SparseThroughputPoint]) -> String {
        let scalar_sps = |p: &SparseThroughputPoint| {
            points
                .iter()
                .find(|q| {
                    q.batch == p.batch
                        && q.distribution == p.distribution
                        && q.backend == SparseBackend::Scalar
                })
                .map(|q| q.samples_per_sec)
        };
        let mut json = format!(
            "{{\n  \"unit\": \"samples_per_sec\",\n  \"stage\": \"embedding_bag_reduce_batch\",\n  \"model\": \"{model_name}\",\n  \"points\": [\n"
        );
        for (i, p) in points.iter().enumerate() {
            let speedup = scalar_sps(p)
                .filter(|&s| s > 0.0)
                .map_or(0.0, |s| p.samples_per_sec / s);
            json.push_str(&format!(
                "    {{\"distribution\": \"{}\", \"batch\": {}, \"backend\": \"{}\", \
                 \"samples_per_sec\": {:.1}, \"streamer_samples_per_sec\": {:.1}, \
                 \"cache_hit_rate\": {:.4}, \
                 \"speedup_vs_scalar\": {:.2}}}{}\n",
                p.distribution,
                p.batch,
                p.backend.label(),
                p.samples_per_sec,
                p.streamer_samples_per_sec,
                p.cache_hit_rate,
                speedup,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Renders batched-throughput measurements as the machine-readable
    /// `BENCH_batch.json` document tracked for the performance trajectory:
    /// per model, batch size → samples/s per backend, both execution modes,
    /// plus the batch-major speedup.
    pub fn bench_batch_json(sections: &[(&str, &[BatchThroughputPoint])]) -> String {
        let mut json = String::from("{\n  \"unit\": \"samples_per_sec\",\n  \"models\": [\n");
        for (mi, (model_name, points)) in sections.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"model\": \"{model_name}\", \"points\": [\n"
            ));
            for (i, p) in points.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"batch\": {}, \"backend\": \"{}\", \"batch_major\": {:.1}, \
                     \"per_sample\": {:.1}, \"speedup\": {:.2}}}{}\n",
                    p.batch,
                    p.backend.label(),
                    p.batch_major_sps,
                    p.per_sample_sps,
                    p.speedup(),
                    if i + 1 < points.len() { "," } else { "" }
                ));
            }
            json.push_str(&format!(
                "    ]}}{}\n",
                if mi + 1 < sections.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Runs the at-load serving sweep: for every `offered QPS × policy ×
    /// replicas` cell, replays a seeded Poisson arrival stream open-loop
    /// against a pool of replica shards (see [`centaur_serve::serve_replay`])
    /// and digests per-request end-to-end latency. `duration_s` sets the
    /// offered window per cell (the query count scales with the offered
    /// load, clamped to `[64, max_queries]`).
    ///
    /// Cells run **sequentially** — each cell saturates the host with its
    /// own generator + worker threads, so overlapping cells would corrupt
    /// the tail-latency measurement.
    ///
    /// # Panics
    ///
    /// Panics when the model does not fit the accelerator or a serving run
    /// fails — fixed, known-good configurations.
    pub fn serve_latency_sweep(
        &self,
        config: &ModelConfig,
        offered_qps: &[f64],
        policies: &[centaur_serve::BatchPolicy],
        replicas: &[usize],
        duration_s: f64,
        max_queries: usize,
    ) -> Vec<centaur_serve::ServeReport> {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        let mut reports = Vec::with_capacity(offered_qps.len() * policies.len() * replicas.len());
        for &qps in offered_qps {
            let queries = ((qps * duration_s).ceil() as usize).clamp(64, max_queries.max(64));
            for &policy in policies {
                for &shards in replicas {
                    reports.push(
                        centaur_serve::run_serve_cell(
                            &model,
                            centaur::CentaurConfig::harpv2(),
                            self.distribution,
                            centaur_serve::ServeCell::poisson(
                                qps, queries, policy, shards, self.seed,
                            ),
                        )
                        .expect("serving cell succeeds"),
                    );
                }
            }
        }
        reports
    }

    /// Runs the overload sweep: for every `traffic shape × load multiplier
    /// × serving variant` cell, replays the shaped arrival stream (offered
    /// load = `multiplier × capacity_qps`, deliberately including loads past
    /// the knee) and digests goodput-under-SLO alongside latency. Each
    /// variant pairs a batching policy with its [`ServeOptions`] so an
    /// unprotected baseline and a shedding + deadline-aware configuration
    /// sweep the same traffic.
    ///
    /// Cells run **sequentially** for the same reason as
    /// [`serve_latency_sweep`](Self::serve_latency_sweep).
    ///
    /// [`ServeOptions`]: centaur_serve::ServeOptions
    ///
    /// # Panics
    ///
    /// Panics when the model does not fit the accelerator or a serving run
    /// fails — fixed, known-good configurations.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_overload_sweep(
        &self,
        config: &ModelConfig,
        capacity_qps: f64,
        shapes: &[centaur_workload::TrafficShape],
        load_multipliers: &[f64],
        variants: &[(centaur_serve::BatchPolicy, centaur_serve::ServeOptions)],
        replicas: usize,
        duration_s: f64,
        max_queries: usize,
    ) -> Vec<centaur_serve::ServeReport> {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        let mut reports =
            Vec::with_capacity(shapes.len() * load_multipliers.len() * variants.len());
        for &shape in shapes {
            for &multiplier in load_multipliers {
                let qps = multiplier * capacity_qps;
                let queries = ((qps * duration_s).ceil() as usize).clamp(64, max_queries.max(64));
                for &(policy, options) in variants {
                    reports.push(
                        centaur_serve::run_serve_cell(
                            &model,
                            centaur::CentaurConfig::harpv2(),
                            self.distribution,
                            centaur_serve::ServeCell::poisson(
                                qps, queries, policy, replicas, self.seed,
                            )
                            .with_shape(shape)
                            .with_options(options),
                        )
                        .expect("overload cell succeeds"),
                    );
                }
            }
        }
        reports
    }

    /// Runs the availability-under-faults sweep: for every `fault spec ×
    /// load multiplier × serving variant` cell, replays a seeded Poisson
    /// stream against a **supervised** replica pool while a deterministic
    /// fault plan (sampled from the spec over the cell's replay window)
    /// injects crashes, stalls and transient datapath errors — and digests
    /// availability, restarts, retries and per-reason rejections alongside
    /// the goodput metrics. Every variant must carry supervision in its
    /// [`ServeOptions`]; a `CENTAUR_SERVE_FAULT_PLAN` env override replaces
    /// the seeded schedule of every faulted cell.
    ///
    /// Cells run **sequentially** for the same reason as
    /// [`serve_latency_sweep`](Self::serve_latency_sweep).
    ///
    /// [`ServeOptions`]: centaur_serve::ServeOptions
    ///
    /// # Panics
    ///
    /// Panics when the model does not fit the accelerator or a serving run
    /// fails — fixed, known-good configurations (the supervised pool
    /// absorbs the injected faults rather than aborting).
    #[allow(clippy::too_many_arguments)]
    pub fn serve_availability_sweep(
        &self,
        config: &ModelConfig,
        capacity_qps: f64,
        faults: &[centaur_serve::FaultSpec],
        load_multipliers: &[f64],
        variants: &[(centaur_serve::BatchPolicy, centaur_serve::ServeOptions)],
        replicas: usize,
        duration_s: f64,
        max_queries: usize,
    ) -> Vec<centaur_serve::ServeReport> {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        let mut reports =
            Vec::with_capacity(faults.len() * load_multipliers.len() * variants.len());
        for &spec in faults {
            for &multiplier in load_multipliers {
                let qps = multiplier * capacity_qps;
                let queries = ((qps * duration_s).ceil() as usize).clamp(64, max_queries.max(64));
                for &(policy, options) in variants {
                    reports.push(
                        centaur_serve::run_serve_cell(
                            &model,
                            centaur::CentaurConfig::harpv2(),
                            self.distribution,
                            centaur_serve::ServeCell::poisson(
                                qps, queries, policy, replicas, self.seed,
                            )
                            .with_options(options)
                            .with_faults(spec),
                        )
                        .unwrap_or_else(|e| {
                            panic!(
                                "availability cell failed ({spec:?}, {qps:.0} qps, {}): {e}",
                                policy.label(),
                            )
                        }),
                    );
                }
            }
        }
        reports
    }

    /// Measures the batch-1 FIFO saturation capacity of `config` on one
    /// replica — the anchor [`ExperimentRunner::serve_latency_sweep`]
    /// callers place offered loads around.
    ///
    /// # Panics
    ///
    /// Panics when the model does not fit the accelerator.
    pub fn serve_fifo_capacity_qps(&self, config: &ModelConfig) -> f64 {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        centaur_serve::calibrate_fifo_capacity_qps(
            &model,
            centaur::CentaurConfig::harpv2(),
            self.distribution,
            self.seed,
        )
        .expect("calibration succeeds")
    }

    /// Runs the cross-pool isolation sweep: a light/heavy tenant mix is
    /// served twice per scenario — **isolated** per-tenant pools (own EDF
    /// queue, own SLO, own admission depth, own supervision and fault
    /// budgets) versus one **shared-everything** pool (single FIFO queue,
    /// pooled replicas, merged budgets) — under a fault-free baseline
    /// (every tenant inside its pooled capacity) and a stressed scenario
    /// (the heaviest tenant at 2× its pooled capacity with heavy-tailed
    /// arrivals and a crash plan targeting its pool, the others at their
    /// baseline rates). Rows come back one per tenant in mix order,
    /// grouped `[baseline isolated…, baseline shared…, stressed isolated…,
    /// stressed shared…]` — isolation holds when the stressed-isolated
    /// light rows match their baseline rows while the stressed-shared ones
    /// degrade.
    ///
    /// The tenant mix reads `CENTAUR_SERVE_MIX` (default
    /// `dlrm1:0.7,dlrm6:0.3`, every model shrunk to `rows_per_table`) and
    /// per-tenant SLOs read `CENTAUR_SERVE_MIX_SLO_MS` when the list
    /// length matches the mix (default: the base `CENTAUR_SERVE_SLO_MS`
    /// scaled by each model's relative sample cost and by the tenant
    /// count, since co-located pools time-share the host). Every tenant's
    /// machine rate is **measured** (batch-1 FIFO calibration, so "2× the
    /// pooled capacity" is genuinely overload); the deadline-policy
    /// service estimates are derived from the cheapest tenant's through
    /// [`relative_sample_cost`] / [`scaled_service_estimate`] and
    /// stretched by the co-location factor.
    ///
    /// Cells run **sequentially** for the same reason as
    /// [`serve_latency_sweep`](Self::serve_latency_sweep).
    ///
    /// [`relative_sample_cost`]: centaur_serve::relative_sample_cost
    /// [`scaled_service_estimate`]: centaur_serve::scaled_service_estimate
    ///
    /// # Panics
    ///
    /// Panics when a tenant model does not fit the accelerator or a mix
    /// cell fails — fixed, known-good configurations (the supervised pools
    /// absorb the injected faults rather than aborting).
    pub fn serve_isolation_sweep(
        &self,
        rows_per_table: u64,
        duration_s: f64,
        max_queries: usize,
    ) -> Vec<centaur_serve::ServeReport> {
        use centaur_serve::{PoolMode, TenantSpec};
        use centaur_workload::{TenantTraffic, TrafficShape};

        let mix = centaur_serve::serve_mix()
            .unwrap_or_else(|| vec![(PaperModel::Dlrm1, 0.7), (PaperModel::Dlrm6, 0.3)]);
        let configs: Vec<ModelConfig> = mix
            .iter()
            .map(|(paper, _)| paper.config().with_rows_per_table(rows_per_table))
            .collect();
        let models: Vec<DlrmModel> = configs
            .iter()
            .enumerate()
            .map(|(t, config)| {
                DlrmModel::random(config, self.seed.wrapping_add(t as u64))
                    .expect("valid tenant model")
            })
            .collect();
        let costs: Vec<f64> = configs
            .iter()
            .map(centaur_serve::relative_sample_cost)
            .collect();
        // One measured capacity on the cheapest tenant anchors everything;
        // the other tenants' capacities and service estimates follow from
        // their relative per-sample cost.
        let anchor = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(t, _)| t)
            .expect("non-empty mix");
        // The rate at which each tenant's model alone would saturate the
        // whole machine — measured per tenant, because the analytical
        // per-sample cost overestimates heavy models (it ignores how much
        // better big batches amortize), and an overload cell built on an
        // underestimated pool rate is not actually overloaded.
        let machine_rates: Vec<f64> = models
            .iter()
            .map(|model| {
                centaur_serve::calibrate_fifo_capacity_qps(
                    model,
                    centaur::CentaurConfig::harpv2(),
                    self.distribution,
                    self.seed,
                )
                .expect("calibration succeeds")
            })
            .collect();
        let anchor_capacity = machine_rates[anchor];
        let base_estimate =
            Duration::from_secs_f64(centaur::BATCH_WAVE_SAMPLES as f64 / anchor_capacity.max(1.0));
        let stress_target = costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(t, _)| t)
            .expect("non-empty mix");

        // Co-located pools time-share the host: a batch's wall-clock
        // service time — and the scheduling delay a worker can absorb —
        // stretches by roughly the number of concurrently busy pools. Both
        // the default per-tenant SLOs and the deadline-policy service
        // estimates scale by this factor; explicit
        // `CENTAUR_SERVE_MIX_SLO_MS` values are used as given.
        let contention = mix.len() as u32;
        let base_slo_ms = centaur_serve::serve_slo_ms();
        let slo_ms: Vec<f64> = centaur_serve::serve_mix_slo_ms()
            .filter(|slos| slos.len() == mix.len())
            .unwrap_or_else(|| {
                costs
                    .iter()
                    .map(|cost| base_slo_ms * cost / costs[anchor] * f64::from(contention))
                    .collect()
            });
        // The stressed tenant gets a second replica so its pool has a
        // restart to spare when the crash plan fires mid-overload.
        let replicas: Vec<usize> = (0..mix.len())
            .map(|t| if t == stress_target { 2 } else { 1 })
            .collect();
        let supervision = centaur_serve::Supervision::new(
            centaur_serve::serve_retry_limit(),
            centaur_serve::serve_restart_budget(),
        );
        // The fleet is provisioned to the mix's *work*: each tenant's pool
        // owns a slice of the one measured machine proportional to its
        // share of the offered work, so pool capacities sum to the machine
        // — on this host extra replicas buy a pool restart headroom, not
        // extra throughput. Work-proportional provisioning makes the
        // baseline request split land exactly on the mix shares.
        let total_work: f64 = mix
            .iter()
            .zip(&costs)
            .map(|((_, share), cost)| share * cost)
            .sum();
        let pooled: Vec<f64> = mix
            .iter()
            .zip(&costs)
            .zip(&machine_rates)
            .map(|(((_, share), cost), rate)| share * cost / total_work * rate)
            .collect();
        // Baseline: every tenant offers 0.5× its own pool's capacity.
        let nominal: Vec<f64> = pooled.iter().map(|capacity| 0.5 * capacity).collect();

        let mut reports = Vec::new();
        for stressed in [false, true] {
            let rates: Vec<f64> = nominal
                .iter()
                .enumerate()
                .map(|(t, &rate)| {
                    if stressed && t == stress_target {
                        2.0 * pooled[t]
                    } else {
                        rate
                    }
                })
                .collect();
            let total_qps: f64 = rates.iter().sum();
            let total_queries =
                ((total_qps * duration_s).ceil() as usize).clamp(64, max_queries.max(64));
            let mut tenants = Vec::with_capacity(mix.len());
            let mut assigned = 0.0_f64;
            for (t, &(paper, _)) in mix.iter().enumerate() {
                // The last share absorbs the rounding residue so the mix
                // always sums to exactly 1.
                let share = if t + 1 == mix.len() {
                    (1.0 - assigned).max(f64::EPSILON)
                } else {
                    rates[t] / total_qps
                };
                assigned += share;
                let under_stress = stressed && t == stress_target;
                let shape = if under_stress {
                    TrafficShape::HeavyTail
                } else {
                    TrafficShape::Poisson
                };
                let slo = Duration::from_secs_f64(slo_ms[t] * 1e-3);
                let depth = ((pooled[t] * slo.as_secs_f64()) as usize).max(16);
                let name = paper.label().to_ascii_lowercase().replace(['(', ')'], "");
                let mut spec = TenantSpec::new(
                    &name,
                    models[t].clone(),
                    TenantTraffic::new(share, shape),
                    slo,
                )
                .with_distribution(self.distribution)
                .with_replicas(replicas[t])
                .supervised(supervision)
                .with_service_estimate(
                    centaur_serve::scaled_service_estimate(
                        base_estimate,
                        &configs[anchor],
                        &configs[t],
                    ) * contention,
                )
                .with_admission_depth(depth);
                if under_stress {
                    spec = spec.with_faults(centaur_serve::FaultSpec::crashes(1).with_seed(42));
                }
                tenants.push(spec);
            }
            for mode in [PoolMode::Isolated, PoolMode::Shared] {
                reports.extend(
                    centaur_serve::run_mix_cell(
                        centaur::CentaurConfig::harpv2(),
                        &tenants,
                        mode,
                        total_qps,
                        total_queries,
                        self.seed,
                    )
                    .unwrap_or_else(|e| {
                        panic!(
                            "isolation cell failed ({} pools, stressed={stressed}): {e}",
                            mode.label(),
                        )
                    }),
                );
            }
        }
        reports
    }

    /// Renders serving measurements as the machine-readable
    /// `BENCH_serve.json` document tracked for the performance trajectory:
    /// one point per `offered QPS × traffic × policy × replicas` cell with
    /// achieved throughput, goodput under the cell's SLO, shed counts, mean
    /// coalesced batch and the full latency digest (mean, p50/p95/p99/p99.9,
    /// max). Cells without an SLO write `"slo_ms": null` and goodput equals
    /// throughput. Fault-tolerance columns ride on every point: the fault
    /// plan label, availability, per-reason rejection counts (`failed`
    /// alongside the shed split), restarts, retries and replicas lost —
    /// `"faults": "none"` with availability 1.0 on fault-free cells.
    /// Tail-tolerance columns follow: hedges issued, hedge wins,
    /// duplicates suppressed by first-result-wins resolution, quarantines
    /// entered and backoff re-admissions — all zero on unhedged cells.
    /// Multi-tenant columns lead every point: the tenant name and pool
    /// topology (`"-"` / `"single"` on single-model cells, the tenant name
    /// with `"isolated"` or `"shared"` on isolation-sweep rows).
    pub fn bench_serve_json(
        model_name: &str,
        fifo_capacity_qps: f64,
        reports: &[centaur_serve::ServeReport],
    ) -> String {
        let mut json = format!(
            "{{\n  \"unit\": \"seconds\",\n  \"scenario\": \"open_loop_shaped_replay\",\n  \
             \"model\": \"{model_name}\",\n  \"fifo_capacity_qps\": {fifo_capacity_qps:.0},\n  \
             \"points\": [\n"
        );
        for (i, r) in reports.iter().enumerate() {
            let slo_ms = r.slo_ms.map_or("null".to_string(), |ms| format!("{ms:.1}"));
            json.push_str(&format!(
                "    {{\"tenant\": \"{}\", \"pool\": \"{}\", \
                 \"offered_qps\": {:.0}, \"traffic\": \"{}\", \"policy\": \"{}\", \
                 \"replicas\": {}, \"slo_ms\": {}, \"completed\": {}, \
                 \"achieved_qps\": {:.1}, \"goodput_qps\": {:.1}, \"shed\": {}, \
                 \"shed_admission\": {}, \"shed_expired\": {}, \"deadline_misses\": {}, \
                 \"faults\": \"{}\", \"availability\": {:.6}, \"failed\": {}, \
                 \"retries\": {}, \"restarts\": {}, \"replicas_lost\": {}, \
                 \"hedges\": {}, \"hedge_wins\": {}, \"duplicates_suppressed\": {}, \
                 \"quarantines\": {}, \"readmissions\": {}, \
                 \"mean_batch\": {:.2}, \
                 \"mean_s\": {:.6}, \"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}, \
                 \"p999_s\": {:.6}, \"max_s\": {:.6}}}{}\n",
                r.tenant,
                r.pool,
                r.offered_qps,
                r.traffic,
                r.policy,
                r.replicas,
                slo_ms,
                r.completed,
                r.achieved_qps,
                r.goodput_qps,
                r.shed,
                r.shed_admission,
                r.shed_expired,
                r.deadline_misses,
                r.faults,
                r.availability,
                r.failed,
                r.retries,
                r.restarts,
                r.replicas_lost,
                r.hedges,
                r.hedge_wins,
                r.duplicates_suppressed,
                r.quarantines,
                r.readmissions,
                r.mean_batch,
                r.latency.mean_s,
                r.latency.p50_s,
                r.latency.p95_s,
                r.latency.p99_s,
                r.latency.p999_s,
                r.latency.max_s,
                if i + 1 < reports.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Profiles the cache behaviour of one request (Figure 6).
    pub fn profile_cache(&self, model: PaperModel, batch: usize) -> CacheProfile {
        let config = model.config();
        let (warm, trace) = self.traces(&config, batch);
        CacheProfiler::profile(&CpuConfig::broadwell_xeon(), &trace, &warm)
    }

    /// Sweeps the total lookups per table for a single-table DLRM(4)-style
    /// configuration (Figures 7(b) and 13(b)), one sweep point per worker
    /// thread.
    pub fn lookup_sweep(&self, batch: usize, lookups: &[usize]) -> Vec<BatchSweepPoint> {
        let base = PaperModel::Dlrm4.config().with_num_tables(1);
        self.parallel_cells(lookups, |&total| {
            // The x-axis is the *total* lookups per table for the whole
            // batch; convert to per-sample lookups (at least one).
            let per_sample = (total / batch.max(1)).max(1);
            let config = base.with_lookups_per_table(per_sample);
            let cpu = self.run_cpu(&config, batch);
            let centaur = self.run_centaur(&config, batch);
            BatchSweepPoint {
                batch,
                total_lookups_per_table: per_sample * batch,
                cpu_gbs: cpu.effective_embedding_throughput().gigabytes_per_second(),
                centaur_gbs: centaur
                    .effective_embedding_throughput()
                    .gigabytes_per_second(),
            }
        })
    }
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        ExperimentRunner::new()
    }
}

/// Builds the pool of distinct requests a throughput measurement rotates
/// through.
///
/// Timing one fixed request in a loop lets a small batch's entire gathered
/// row set sit in L2 across repetitions — warm-cache numbers production
/// serving never sees (every real request draws fresh indices), which made
/// small batches look faster than large ones on gather-heavy models. The
/// pool is sized so one rotation's gather footprint (≥ 4 MB) exceeds any
/// private cache: every request's rows are cold again by the time it comes
/// back around, at every batch size.
fn request_pool(
    generator: &mut RequestGenerator,
    config: &ModelConfig,
    batch: usize,
    footprint_bytes: u64,
    quick: bool,
) -> Vec<centaur_workload::FunctionalBatch> {
    let per_request = (config.gathered_bytes_per_sample() * batch.max(1) as u64).max(1);
    let pool = if quick {
        1
    } else {
        footprint_bytes.div_ceil(per_request).clamp(4, 512) as usize
    };
    (0..pool)
        .map(|_| generator.functional_batch(batch))
        .collect()
}

/// Rotation footprint for end-to-end batch measurements: enough gathered
/// bytes that a rotation spills L2 on any current CPU.
const BATCH_POOL_FOOTPRINT: u64 = 4 << 20;
/// Rotation footprint for the (much faster) isolated sparse stage: a full
/// rotation must spill the last-level working set a single request leaves
/// behind, or small batches measure warm-L2 gathers production never sees.
const SPARSE_POOL_FOOTPRINT: u64 = 32 << 20;

/// Times repeated executions of `f` (each covering `batch` samples) and
/// returns the sustained samples-per-second rate. One warm-up call, then an
/// adaptive repetition count targeting ~50 ms of measurement.
fn time_samples_per_sec(batch: usize, quick: bool, mut f: impl FnMut()) -> f64 {
    f(); // Warm-up: grows every staging buffer to its high-water mark.
    if batch == 0 {
        return 0.0;
    }
    let probe = Instant::now();
    f();
    let per_rep = probe.elapsed().as_secs_f64();
    let target = if quick { 0.0 } else { 0.05 };
    let reps = if per_rep > 0.0 {
        ((target / per_rep) as u64).clamp(3, 100_000)
    } else {
        3
    };
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (batch as u64 * reps) as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_all_three_systems() {
        let runner = ExperimentRunner::new();
        let cmp = runner.compare(PaperModel::Dlrm1, 4);
        assert!(cmp.latency_ns(SystemKind::CpuOnly) > 0.0);
        assert!(cmp.latency_ns(SystemKind::CpuGpu) > 0.0);
        assert!(cmp.latency_ns(SystemKind::Centaur) > 0.0);
        assert!(cmp.centaur_speedup_vs_cpu() > 1.0);
        // Normalisation to CPU-GPU makes CPU-GPU itself exactly 1.0.
        assert!((cmp.performance_vs_cpu_gpu(SystemKind::CpuGpu) - 1.0).abs() < 1e-12);
        assert!((cmp.efficiency_vs_cpu_gpu(SystemKind::CpuGpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_sweep_is_monotonic_in_lookups_for_cpu() {
        let runner = ExperimentRunner::new();
        let points = runner.lookup_sweep(16, &[16, 128, 512]);
        assert_eq!(points.len(), 3);
        assert!(points[0].cpu_gbs <= points[2].cpu_gbs * 1.05);
        assert!(points.iter().all(|p| p.centaur_gbs > 0.0));
    }

    #[test]
    fn compare_matrix_matches_sequential_compare() {
        let runner = ExperimentRunner::new();
        let models = [PaperModel::Dlrm1, PaperModel::Dlrm3];
        let batches = [1usize, 8];
        let parallel = runner.compare_matrix(&models, &batches);
        assert_eq!(parallel.len(), 4);
        let mut i = 0;
        for &model in &models {
            for &batch in &batches {
                let seq = runner.compare(model, batch);
                assert_eq!(parallel[i].model, model);
                assert_eq!(parallel[i].batch, batch);
                assert_eq!(parallel[i].cpu.total_ns(), seq.cpu.total_ns());
                assert_eq!(parallel[i].centaur.total_ns(), seq.centaur.total_ns());
                i += 1;
            }
        }
    }

    #[test]
    fn functional_batch_throughput_produces_positive_rates() {
        let runner = ExperimentRunner::new();
        let config = PaperModel::Dlrm1.config().with_rows_per_table(256);
        let points = runner.functional_batch_throughput_with(
            &config,
            &[1, 4],
            &[KernelBackend::Naive, KernelBackend::Blocked],
            true,
        );
        assert_eq!(points.len(), 4);
        assert!(points
            .iter()
            .all(|p| p.batch_major_sps > 0.0 && p.per_sample_sps > 0.0 && p.speedup() > 0.0));

        let json =
            ExperimentRunner::bench_batch_json(&[("DLRM(1)", &points), ("other", &points[..2])]);
        assert!(json.contains("\"model\": \"DLRM(1)\""));
        assert!(json.contains("\"model\": \"other\""));
        assert!(json.contains("\"backend\": \"blocked\""));
        assert_eq!(json.matches("\"batch\":").count(), 6);
    }

    #[test]
    fn sparse_gather_throughput_produces_positive_rates_and_json() {
        let runner = ExperimentRunner::new();
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        let points = runner.sparse_gather_throughput_with(
            &config,
            &[4],
            &SparseBackend::all(),
            &[
                IndexDistribution::Uniform,
                IndexDistribution::production_skew(),
            ],
            true,
        );
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.samples_per_sec > 0.0));
        assert!(points.iter().all(|p| p.streamer_samples_per_sec > 0.0));
        // The scalar oracle models the uncached pipeline.
        assert!(points
            .iter()
            .filter(|p| p.backend == SparseBackend::Scalar)
            .all(|p| p.cache_hit_rate == 0.0));
        // A 512-row table under production skew must show real reuse.
        assert!(points
            .iter()
            .any(|p| p.backend != SparseBackend::Scalar && p.cache_hit_rate > 0.2));

        let json = ExperimentRunner::bench_sparse_json("DLRM(1)", &points);
        assert!(json.contains("\"model\": \"DLRM(1)\""));
        assert!(json.contains("\"streamer_samples_per_sec\""));
        assert!(json.contains("\"backend\": \"vectorized\""));
        assert!(json.contains("\"distribution\": \"zipf(s=0.99)\""));
        assert!(json.contains("\"speedup_vs_scalar\""));
        assert_eq!(json.matches("\"batch\":").count(), 6);
    }

    #[test]
    fn serve_sweep_produces_reports_and_json() {
        let runner = ExperimentRunner::new();
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        let policies = [
            centaur_serve::BatchPolicy::Fifo,
            centaur_serve::BatchPolicy::Dynamic {
                max_batch: 8,
                max_wait: std::time::Duration::from_micros(200),
            },
        ];
        let reports = runner.serve_latency_sweep(&config, &[2_000.0], &policies, &[1, 2], 0.04, 96);
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.completed > 0
            && r.achieved_qps > 0.0
            && r.latency.p99_s >= r.latency.p50_s));
        // FIFO never coalesces; dynamic may.
        assert!(reports
            .iter()
            .filter(|r| r.policy == "fifo")
            .all(|r| (r.mean_batch - 1.0).abs() < f64::EPSILON));

        let capacity = runner.serve_fifo_capacity_qps(&config);
        assert!(capacity > 0.0);
        let json = ExperimentRunner::bench_serve_json("DLRM(1)", capacity, &reports);
        assert!(json.contains("\"policy\": \"fifo\""));
        assert!(
            json.contains("\"policy\": \"dynamic8w200us\""),
            "dynamic labels carry the hold-open window"
        );
        assert!(json.contains("\"fifo_capacity_qps\""));
        assert!(json.contains("\"traffic\": \"poisson\""));
        // Single-model cells carry placeholder multi-tenant columns.
        assert_eq!(json.matches("\"tenant\": \"-\"").count(), 4);
        assert_eq!(json.matches("\"pool\": \"single\"").count(), 4);
        assert!(json.contains("\"slo_ms\": null"), "no-SLO cells say so");
        assert_eq!(json.matches("\"p99_s\":").count(), 4);
        assert_eq!(json.matches("\"goodput_qps\":").count(), 4);
        assert_eq!(json.matches("\"shed\":").count(), 4);
        // The deep-tail and mean columns ride along in every point.
        assert_eq!(json.matches("\"p999_s\":").count(), 4);
        assert_eq!(json.matches("\"mean_s\":").count(), 4);
    }

    #[test]
    fn overload_sweep_covers_shapes_loads_and_variants() {
        use std::time::Duration;
        let runner = ExperimentRunner::new();
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        let slo = Duration::from_millis(5);
        let variants = [
            (
                centaur_serve::BatchPolicy::dynamic_wave(),
                centaur_serve::ServeOptions::with_slo(slo),
            ),
            (
                centaur_serve::BatchPolicy::deadline_wave(Duration::from_micros(500)),
                centaur_serve::ServeOptions::overload_protected(slo, 256),
            ),
        ];
        let shapes = [
            centaur_workload::TrafficShape::Poisson,
            centaur_workload::TrafficShape::Bursty,
        ];
        let reports = runner.serve_overload_sweep(
            &config,
            50_000.0,
            &shapes,
            &[0.5, 1.5],
            &variants,
            1,
            0.01,
            128,
        );
        assert_eq!(reports.len(), 8, "2 shapes × 2 loads × 2 variants");
        assert!(reports.iter().all(|r| r.slo_ms == Some(5.0)));
        assert!(reports.iter().any(|r| r.traffic == "bursty"));
        assert!(reports.iter().any(|r| r.policy.starts_with("deadline")));
        for r in &reports {
            assert!(r.goodput_qps <= r.achieved_qps + 1e-9);
            assert_eq!(r.shed, r.shed_admission + r.shed_expired);
        }
        let json = ExperimentRunner::bench_serve_json("DLRM(1)", 50_000.0, &reports);
        assert!(json.contains("\"traffic\": \"bursty\""));
        assert!(json.contains("\"slo_ms\": 5.0"));
        assert_eq!(json.matches("\"goodput_qps\":").count(), 8);
        // Fault-free cells still carry the availability columns.
        assert_eq!(json.matches("\"faults\": \"none\"").count(), 8);
        assert_eq!(json.matches("\"availability\": 1.000000").count(), 8);
    }

    #[test]
    fn availability_sweep_survives_injected_faults_with_full_accounting() {
        use std::time::Duration;
        let runner = ExperimentRunner::new();
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        let slo = Duration::from_millis(5);
        let supervision = centaur_serve::Supervision::default();
        let variants = [(
            centaur_serve::BatchPolicy::dynamic_wave(),
            centaur_serve::ServeOptions::with_slo(slo).supervised(supervision),
        )];
        let faults = [
            centaur_serve::FaultSpec::none(),
            centaur_serve::FaultSpec::crashes(1).with_seed(41),
        ];
        let reports = runner.serve_availability_sweep(
            &config,
            20_000.0,
            &faults,
            &[0.8],
            &variants,
            2,
            0.02,
            256,
        );
        assert_eq!(reports.len(), 2, "2 fault specs × 1 load × 1 variant");
        let clean = &reports[0];
        assert_eq!(clean.faults, "none");
        assert_eq!(clean.restarts, 0);
        assert_eq!(clean.availability, 1.0);
        let crashed = &reports[1];
        assert_eq!(crashed.faults, "c1");
        assert_eq!(crashed.restarts, 1, "the crashed replica restarted");
        assert_eq!(crashed.replicas_lost, 0);
        for r in &reports {
            // queries = clamp(ceil(0.8 × 20k × 0.02 s), 64, 256) = 256.
            assert_eq!(
                r.completed + r.shed + r.failed,
                256,
                "every generated request reached exactly one terminal state"
            );
            assert!(r.availability >= 0.99, "availability {}", r.availability);
        }
        let json = ExperimentRunner::bench_serve_json("DLRM(1)", 20_000.0, &reports);
        assert!(json.contains("\"faults\": \"c1\""));
        assert_eq!(json.matches("\"restarts\":").count(), 2);
        assert_eq!(json.matches("\"failed\":").count(), 2);
        assert_eq!(json.matches("\"replicas_lost\":").count(), 2);
    }

    #[test]
    fn isolation_sweep_confines_stress_to_the_heavy_tenant_pool() {
        let runner = ExperimentRunner::new();
        let reports = runner.serve_isolation_sweep(512, 0.02, 192);
        assert_eq!(reports.len(), 8, "2 scenarios × 2 pool modes × 2 tenants");
        // Rows group [baseline isolated, baseline shared, stressed
        // isolated, stressed shared], one row per tenant in mix order.
        assert!(reports[..2]
            .iter()
            .all(|r| r.pool == "isolated" && r.faults == "none"));
        assert!(reports[2..4].iter().all(|r| r.pool == "shared"));
        let light_stressed = &reports[4];
        let heavy_stressed = &reports[5];
        assert_eq!(light_stressed.tenant, "dlrm1");
        assert_eq!(heavy_stressed.tenant, "dlrm6");
        assert_eq!(heavy_stressed.traffic, "heavytail");
        assert_eq!(
            heavy_stressed.faults, "c1",
            "the crash plan lands on the heavy pool"
        );
        assert_eq!(
            light_stressed.faults, "none",
            "the isolated light pool never sees the heavy tenant's faults"
        );
        assert_eq!(light_stressed.traffic, "poisson");
        // Each tenant row is judged against its own SLO and runs its own
        // calibrated deadline policy; the heavy model's budgets are larger.
        assert!(heavy_stressed.slo_ms.unwrap() > light_stressed.slo_ms.unwrap());
        assert_ne!(light_stressed.policy, heavy_stressed.policy);
        // In the shared stressed cell the merged pool-level fault plan
        // taints every tenant row — there is no per-tenant fault budget.
        assert!(reports[6..8]
            .iter()
            .all(|r| r.pool == "shared" && r.faults == "c1"));
        let json = ExperimentRunner::bench_serve_json("mix", 0.0, &reports);
        assert_eq!(json.matches("\"pool\": \"isolated\"").count(), 4);
        assert_eq!(json.matches("\"pool\": \"shared\"").count(), 4);
        assert_eq!(json.matches("\"tenant\": \"dlrm6\"").count(), 4);
    }

    #[test]
    fn runner_is_deterministic() {
        let a = ExperimentRunner::new().compare(PaperModel::Dlrm3, 4);
        let b = ExperimentRunner::new().compare(PaperModel::Dlrm3, 4);
        assert_eq!(a.cpu.total_ns(), b.cpu.total_ns());
        assert_eq!(a.centaur.total_ns(), b.centaur.total_ns());
    }
}
