//! Shared experiment-sweep logic used by every figure/table binary and by
//! the workspace integration tests.

use centaur::{CentaurInferenceResult, CentaurRuntime, CentaurSystem};
use centaur_cpusim::{CacheProfile, CacheProfiler, CpuConfig, CpuInferenceResult, CpuSystem};
use centaur_dlrm::config::{ModelConfig, PaperModel};
use centaur_dlrm::{DlrmModel, KernelBackend};
use centaur_gpusim::{CpuGpuInferenceResult, CpuGpuSystem};
use centaur_power::{EnergyReport, SystemKind};
use centaur_workload::{IndexDistribution, RequestGenerator};
use std::time::Instant;

/// Results of running all three systems on the same request.
#[derive(Debug, Clone)]
pub struct SystemComparison {
    /// Which paper model was run.
    pub model: PaperModel,
    /// Batch size of the request.
    pub batch: usize,
    /// CPU-only result.
    pub cpu: CpuInferenceResult,
    /// CPU-GPU result.
    pub cpu_gpu: CpuGpuInferenceResult,
    /// Centaur result.
    pub centaur: CentaurInferenceResult,
}

impl SystemComparison {
    /// Latency of a given system in nanoseconds.
    pub fn latency_ns(&self, system: SystemKind) -> f64 {
        match system {
            SystemKind::CpuOnly => self.cpu.total_ns(),
            SystemKind::CpuGpu => self.cpu_gpu.total_ns(),
            SystemKind::Centaur => self.centaur.total_ns(),
        }
    }

    /// Energy report of a given system.
    pub fn energy(&self, system: SystemKind) -> EnergyReport {
        EnergyReport::from_latency(system, self.latency_ns(system))
    }

    /// Centaur's end-to-end speedup over CPU-only (Figure 14's right axis).
    pub fn centaur_speedup_vs_cpu(&self) -> f64 {
        self.centaur.speedup_over(self.cpu.total_ns())
    }

    /// Performance of `system` normalized to CPU-GPU (Figure 15(a)).
    pub fn performance_vs_cpu_gpu(&self, system: SystemKind) -> f64 {
        self.energy(system)
            .performance_vs(&self.energy(SystemKind::CpuGpu))
    }

    /// Energy-efficiency of `system` normalized to CPU-GPU (Figure 15(b)).
    pub fn efficiency_vs_cpu_gpu(&self, system: SystemKind) -> f64 {
        self.energy(system)
            .efficiency_vs(&self.energy(SystemKind::CpuGpu))
    }
}

/// A single point of a lookup-count sweep (Figures 7(b) and 13(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSweepPoint {
    /// Batch size.
    pub batch: usize,
    /// Total lookups per table for the request.
    pub total_lookups_per_table: usize,
    /// CPU-only effective gather throughput in GB/s.
    pub cpu_gbs: f64,
    /// Centaur effective gather throughput in GB/s.
    pub centaur_gbs: f64,
}

/// Measured functional inference throughput of the accelerator datapath at
/// one batch size on one kernel backend: the batch-major path
/// (`CentaurRuntime::infer_batch`, one GEMM per MLP layer with `m = batch`)
/// against the per-sample loop (`infer_sample` once per sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchThroughputPoint {
    /// Batch size of the request.
    pub batch: usize,
    /// Kernel backend executing the dense math.
    pub backend: KernelBackend,
    /// Batch-major throughput in samples per second.
    pub batch_major_sps: f64,
    /// Per-sample-loop throughput in samples per second.
    pub per_sample_sps: f64,
}

impl BatchThroughputPoint {
    /// Batch-major speedup over the per-sample loop.
    pub fn speedup(&self) -> f64 {
        if self.per_sample_sps <= 0.0 {
            0.0
        } else {
            self.batch_major_sps / self.per_sample_sps
        }
    }
}

/// Drives the three system simulators over the paper's workloads with
/// deterministic seeds and consistent warm-up.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    seed: u64,
    distribution: IndexDistribution,
}

impl ExperimentRunner {
    /// Creates a runner with the default (uniform-locality) workload and a
    /// fixed seed.
    pub fn new() -> Self {
        ExperimentRunner {
            seed: 0xC0FFEE,
            distribution: IndexDistribution::Uniform,
        }
    }

    /// Uses a different index distribution (for locality ablations).
    pub fn with_distribution(mut self, distribution: IndexDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// The paper's batch-size sweep.
    pub fn batch_sizes() -> [usize; 6] {
        PaperModel::paper_batch_sizes()
    }

    fn traces(
        &self,
        config: &ModelConfig,
        batch: usize,
    ) -> (
        centaur_dlrm::trace::InferenceTrace,
        centaur_dlrm::trace::InferenceTrace,
    ) {
        let mut warm_gen = RequestGenerator::new(config, self.distribution, self.seed ^ 0x5EED);
        let mut gen = RequestGenerator::new(config, self.distribution, self.seed);
        (warm_gen.inference_trace(batch), gen.inference_trace(batch))
    }

    /// Runs the CPU-only system on one request (after warm-up).
    pub fn run_cpu(&self, config: &ModelConfig, batch: usize) -> CpuInferenceResult {
        let (warm, trace) = self.traces(config, batch);
        let mut system = CpuSystem::broadwell();
        system.simulate_warm(&warm, &trace)
    }

    /// Runs the CPU-GPU system on one request (after warm-up).
    pub fn run_cpu_gpu(&self, config: &ModelConfig, batch: usize) -> CpuGpuInferenceResult {
        let (warm, trace) = self.traces(config, batch);
        let mut system = CpuGpuSystem::dgx1();
        system.simulate_warm(&warm, &trace)
    }

    /// Runs the Centaur system on one request.
    pub fn run_centaur(&self, config: &ModelConfig, batch: usize) -> CentaurInferenceResult {
        let (_, trace) = self.traces(config, batch);
        let mut system = CentaurSystem::harpv2();
        system.simulate(&trace)
    }

    /// Runs all three systems on the same request.
    pub fn compare(&self, model: PaperModel, batch: usize) -> SystemComparison {
        let config = model.config();
        SystemComparison {
            model,
            batch,
            cpu: self.run_cpu(&config, batch),
            cpu_gpu: self.run_cpu_gpu(&config, batch),
            centaur: self.run_centaur(&config, batch),
        }
    }

    /// Runs [`ExperimentRunner::compare`] over the full `models × batches`
    /// grid, fanned out across the host's cores with `std::thread::scope`.
    ///
    /// Every figure/table sweep is embarrassingly parallel — each cell
    /// builds its own simulator instances — so the grid is split into one
    /// contiguous chunk per worker. Results come back in grid order
    /// (models outer, batches inner), identical to the sequential loops the
    /// binaries used to run.
    pub fn compare_matrix(
        &self,
        models: &[PaperModel],
        batches: &[usize],
    ) -> Vec<SystemComparison> {
        let cells: Vec<(PaperModel, usize)> = models
            .iter()
            .flat_map(|&m| batches.iter().map(move |&b| (m, b)))
            .collect();
        self.parallel_cells(&cells, |&(model, batch)| self.compare(model, batch))
    }

    /// Maps `f` over `cells` in parallel, preserving order.
    fn parallel_cells<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(cells.len());
        if workers <= 1 {
            return cells.iter().map(&f).collect();
        }
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .chunks(chunk)
                .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect();
        });
        results.into_iter().flatten().collect()
    }

    /// Measures *real* functional inference throughput through the
    /// accelerator datapath (not the timing model): for every
    /// `batch × backend` cell, times `CentaurRuntime::infer_batch`
    /// (batch-major, one GEMM per MLP layer) and the equivalent
    /// per-sample `infer_sample` loop on identical inputs, after warm-up.
    ///
    /// The measurement loop is adaptive (~50 ms per cell, 3 repetitions
    /// minimum); set `CRITERION_QUICK=1` to collapse it to a smoke run.
    ///
    /// # Panics
    ///
    /// Panics when the model does not fit the accelerator or a request
    /// fails — these are fixed, known-good configurations.
    pub fn functional_batch_throughput(
        &self,
        config: &ModelConfig,
        batches: &[usize],
        backends: &[KernelBackend],
    ) -> Vec<BatchThroughputPoint> {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        self.functional_batch_throughput_with(config, batches, backends, quick)
    }

    /// [`ExperimentRunner::functional_batch_throughput`] with the
    /// measurement mode passed explicitly instead of read from the
    /// environment (tests use `quick = true` without touching process-global
    /// state).
    pub fn functional_batch_throughput_with(
        &self,
        config: &ModelConfig,
        batches: &[usize],
        backends: &[KernelBackend],
        quick: bool,
    ) -> Vec<BatchThroughputPoint> {
        let model = DlrmModel::random(config, self.seed).expect("valid benchmark model");
        let mut runtime = CentaurRuntime::harpv2(model).expect("benchmark model fits on chip");
        let mut points = Vec::with_capacity(batches.len() * backends.len());
        for &batch in batches {
            let mut generator = RequestGenerator::new(config, self.distribution, self.seed);
            let request = generator.functional_batch(batch);
            let mut out = vec![0.0f32; batch];
            for &backend in backends {
                runtime.set_backend(backend);
                let batch_major_sps = time_samples_per_sec(batch, quick, || {
                    runtime
                        .infer_batch_into(&request.dense, &request.sparse, &mut out)
                        .expect("batched inference succeeds");
                });
                let per_sample_sps = time_samples_per_sec(batch, quick, || {
                    for (i, indices) in request.sparse.iter().enumerate() {
                        out[i] = runtime
                            .infer_sample(request.dense.row(i), indices)
                            .expect("per-sample inference succeeds");
                    }
                });
                points.push(BatchThroughputPoint {
                    batch,
                    backend,
                    batch_major_sps,
                    per_sample_sps,
                });
            }
        }
        points
    }

    /// Renders batched-throughput measurements as the machine-readable
    /// `BENCH_batch.json` document tracked for the performance trajectory:
    /// per model, batch size → samples/s per backend, both execution modes,
    /// plus the batch-major speedup.
    pub fn bench_batch_json(sections: &[(&str, &[BatchThroughputPoint])]) -> String {
        let mut json = String::from("{\n  \"unit\": \"samples_per_sec\",\n  \"models\": [\n");
        for (mi, (model_name, points)) in sections.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"model\": \"{model_name}\", \"points\": [\n"
            ));
            for (i, p) in points.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"batch\": {}, \"backend\": \"{}\", \"batch_major\": {:.1}, \
                     \"per_sample\": {:.1}, \"speedup\": {:.2}}}{}\n",
                    p.batch,
                    p.backend.label(),
                    p.batch_major_sps,
                    p.per_sample_sps,
                    p.speedup(),
                    if i + 1 < points.len() { "," } else { "" }
                ));
            }
            json.push_str(&format!(
                "    ]}}{}\n",
                if mi + 1 < sections.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Profiles the cache behaviour of one request (Figure 6).
    pub fn profile_cache(&self, model: PaperModel, batch: usize) -> CacheProfile {
        let config = model.config();
        let (warm, trace) = self.traces(&config, batch);
        CacheProfiler::profile(&CpuConfig::broadwell_xeon(), &trace, &warm)
    }

    /// Sweeps the total lookups per table for a single-table DLRM(4)-style
    /// configuration (Figures 7(b) and 13(b)), one sweep point per worker
    /// thread.
    pub fn lookup_sweep(&self, batch: usize, lookups: &[usize]) -> Vec<BatchSweepPoint> {
        let base = PaperModel::Dlrm4.config().with_num_tables(1);
        self.parallel_cells(lookups, |&total| {
            // The x-axis is the *total* lookups per table for the whole
            // batch; convert to per-sample lookups (at least one).
            let per_sample = (total / batch.max(1)).max(1);
            let config = base.with_lookups_per_table(per_sample);
            let cpu = self.run_cpu(&config, batch);
            let centaur = self.run_centaur(&config, batch);
            BatchSweepPoint {
                batch,
                total_lookups_per_table: per_sample * batch,
                cpu_gbs: cpu.effective_embedding_throughput().gigabytes_per_second(),
                centaur_gbs: centaur
                    .effective_embedding_throughput()
                    .gigabytes_per_second(),
            }
        })
    }
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        ExperimentRunner::new()
    }
}

/// Times repeated executions of `f` (each covering `batch` samples) and
/// returns the sustained samples-per-second rate. One warm-up call, then an
/// adaptive repetition count targeting ~50 ms of measurement.
fn time_samples_per_sec(batch: usize, quick: bool, mut f: impl FnMut()) -> f64 {
    f(); // Warm-up: grows every staging buffer to its high-water mark.
    if batch == 0 {
        return 0.0;
    }
    let probe = Instant::now();
    f();
    let per_rep = probe.elapsed().as_secs_f64();
    let target = if quick { 0.0 } else { 0.05 };
    let reps = if per_rep > 0.0 {
        ((target / per_rep) as u64).clamp(3, 100_000)
    } else {
        3
    };
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (batch as u64 * reps) as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_all_three_systems() {
        let runner = ExperimentRunner::new();
        let cmp = runner.compare(PaperModel::Dlrm1, 4);
        assert!(cmp.latency_ns(SystemKind::CpuOnly) > 0.0);
        assert!(cmp.latency_ns(SystemKind::CpuGpu) > 0.0);
        assert!(cmp.latency_ns(SystemKind::Centaur) > 0.0);
        assert!(cmp.centaur_speedup_vs_cpu() > 1.0);
        // Normalisation to CPU-GPU makes CPU-GPU itself exactly 1.0.
        assert!((cmp.performance_vs_cpu_gpu(SystemKind::CpuGpu) - 1.0).abs() < 1e-12);
        assert!((cmp.efficiency_vs_cpu_gpu(SystemKind::CpuGpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_sweep_is_monotonic_in_lookups_for_cpu() {
        let runner = ExperimentRunner::new();
        let points = runner.lookup_sweep(16, &[16, 128, 512]);
        assert_eq!(points.len(), 3);
        assert!(points[0].cpu_gbs <= points[2].cpu_gbs * 1.05);
        assert!(points.iter().all(|p| p.centaur_gbs > 0.0));
    }

    #[test]
    fn compare_matrix_matches_sequential_compare() {
        let runner = ExperimentRunner::new();
        let models = [PaperModel::Dlrm1, PaperModel::Dlrm3];
        let batches = [1usize, 8];
        let parallel = runner.compare_matrix(&models, &batches);
        assert_eq!(parallel.len(), 4);
        let mut i = 0;
        for &model in &models {
            for &batch in &batches {
                let seq = runner.compare(model, batch);
                assert_eq!(parallel[i].model, model);
                assert_eq!(parallel[i].batch, batch);
                assert_eq!(parallel[i].cpu.total_ns(), seq.cpu.total_ns());
                assert_eq!(parallel[i].centaur.total_ns(), seq.centaur.total_ns());
                i += 1;
            }
        }
    }

    #[test]
    fn functional_batch_throughput_produces_positive_rates() {
        let runner = ExperimentRunner::new();
        let config = PaperModel::Dlrm1.config().with_rows_per_table(256);
        let points = runner.functional_batch_throughput_with(
            &config,
            &[1, 4],
            &[KernelBackend::Naive, KernelBackend::Blocked],
            true,
        );
        assert_eq!(points.len(), 4);
        assert!(points
            .iter()
            .all(|p| p.batch_major_sps > 0.0 && p.per_sample_sps > 0.0 && p.speedup() > 0.0));

        let json =
            ExperimentRunner::bench_batch_json(&[("DLRM(1)", &points), ("other", &points[..2])]);
        assert!(json.contains("\"model\": \"DLRM(1)\""));
        assert!(json.contains("\"model\": \"other\""));
        assert!(json.contains("\"backend\": \"blocked\""));
        assert_eq!(json.matches("\"batch\":").count(), 6);
    }

    #[test]
    fn runner_is_deterministic() {
        let a = ExperimentRunner::new().compare(PaperModel::Dlrm3, 4);
        let b = ExperimentRunner::new().compare(PaperModel::Dlrm3, 4);
        assert_eq!(a.cpu.total_ns(), b.cpu.total_ns());
        assert_eq!(a.centaur.total_ns(), b.centaur.total_ns());
    }
}
