//! Criterion group `sparse_gather`: the embedding gather-reduce engine
//! across sparse backends and index distributions, at the bag level (the
//! kernel + table-major partitioner, no accelerator bookkeeping).
//!
//! This is the evidence for the sparse-side overhaul: the vectorized
//! backends' register-tiled, prefetching, AVX2-dispatched inner loop must
//! beat the scalar per-row accumulate chain on both the paper's worst-case
//! uniform draw and a production-like Zipfian skew — while staying bitwise
//! identical (property-tested in `sparse_backend_properties`).

use centaur_dlrm::kernel::SparseBackend;
use centaur_dlrm::{DlrmModel, PaperModel};
use centaur_workload::{IndexDistribution, RequestGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sparse_gather(c: &mut Criterion) {
    // Gather-heavy DLRM(1): 5 tables × 20 lookups/sample. Tables are scaled
    // down so the bench binary stays light; the index streams and reduction
    // shapes (what is being measured) are the paper's.
    let config = PaperModel::Dlrm1.config().with_rows_per_table(4096);
    let model = DlrmModel::random(&config, 3).expect("valid model");
    let bag = model.embeddings();
    let stride = bag.num_tables() * bag.dim();
    let batch = 64;

    for (dist_label, dist) in [
        ("uniform", IndexDistribution::Uniform),
        ("zipf", IndexDistribution::production_skew()),
    ] {
        let mut generator = RequestGenerator::new(&config, dist, 0x5EED);
        let request = generator.functional_batch(batch);
        let mut reduced = vec![0.0f32; batch * stride];
        for backend in SparseBackend::all() {
            c.bench_function(
                &format!("sparse_gather_{}_{}_b{batch}", backend.label(), dist_label),
                |b| {
                    b.iter(|| {
                        bag.reduce_batch_into_with(
                            black_box(&request.sparse),
                            &mut reduced,
                            stride,
                            0,
                            backend,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
}

criterion_group!(sparse_gather, bench_sparse_gather);
criterion_main!(sparse_gather);
