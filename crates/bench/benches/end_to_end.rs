//! Criterion benchmarks of the end-to-end system simulators themselves:
//! how long it takes to *simulate* one batched inference on each design
//! point (CPU-only, CPU-GPU, Centaur) for a representative workload.

use centaur::CentaurSystem;
use centaur_cpusim::CpuSystem;
use centaur_dlrm::PaperModel;
use centaur_gpusim::CpuGpuSystem;
use centaur_workload::{IndexDistribution, RequestGenerator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn traces(model: PaperModel, batch: usize) -> centaur_dlrm::InferenceTrace {
    let mut generator = RequestGenerator::new(&model.config(), IndexDistribution::Uniform, 1);
    generator.inference_trace(batch)
}

fn bench_cpu_only(c: &mut Criterion) {
    let trace = traces(PaperModel::Dlrm1, 16);
    c.bench_function("simulate_cpu_only_dlrm1_b16", |b| {
        b.iter_batched(
            CpuSystem::broadwell,
            |mut system| black_box(system.simulate(black_box(&trace))),
            BatchSize::SmallInput,
        )
    });
}

fn bench_cpu_gpu(c: &mut Criterion) {
    let trace = traces(PaperModel::Dlrm1, 16);
    c.bench_function("simulate_cpu_gpu_dlrm1_b16", |b| {
        b.iter_batched(
            CpuGpuSystem::dgx1,
            |mut system| black_box(system.simulate(black_box(&trace))),
            BatchSize::SmallInput,
        )
    });
}

fn bench_centaur(c: &mut Criterion) {
    let trace = traces(PaperModel::Dlrm1, 16);
    c.bench_function("simulate_centaur_dlrm1_b16", |b| {
        b.iter_batched(
            CentaurSystem::harpv2,
            |mut system| black_box(system.simulate(black_box(&trace))),
            BatchSize::SmallInput,
        )
    });

    let heavy = traces(PaperModel::Dlrm2, 16);
    c.bench_function("simulate_centaur_dlrm2_b16", |b| {
        b.iter_batched(
            CentaurSystem::harpv2,
            |mut system| black_box(system.simulate(black_box(&heavy))),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(end_to_end, bench_cpu_only, bench_cpu_gpu, bench_centaur);
criterion_main!(end_to_end);
