//! Criterion micro-benchmarks of the kernels underlying every experiment:
//! the `SparseLengthsSum` gather/reduce (allocating and zero-alloc paths),
//! the GEMM backends (naive oracle vs blocked vs blocked-parallel), the
//! PE-array tiled GEMM and the dot-product feature interaction.

use centaur::dense::MlpUnit;
use centaur::sparse::EbStreamer;
use centaur_dlrm::kernel::{self, KernelBackend, Workspace};
use centaur_dlrm::{EmbeddingBag, FeatureInteraction, Matrix};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_gather_reduce(c: &mut Criterion) {
    let bag = EmbeddingBag::random(8, 50_000, 32, 7);
    let indices: Vec<Vec<u32>> = (0..8)
        .map(|t| {
            (0..40u32)
                .map(|i| (t as u32 * 977 + i * 131) % 50_000)
                .collect()
        })
        .collect();

    c.bench_function("sparse_lengths_sum_reference", |b| {
        b.iter(|| bag.sparse_lengths_reduce(black_box(&indices)).unwrap())
    });

    let mut reduced = Matrix::zeros(8, 32);
    c.bench_function("sparse_lengths_sum_into_preallocated", |b| {
        b.iter(|| {
            bag.sparse_lengths_reduce_into(black_box(&indices), &mut reduced)
                .unwrap()
        })
    });

    let mut streamer = EbStreamer::default();
    c.bench_function("eb_streamer_gather_reduce_into", |b| {
        b.iter(|| {
            streamer
                .gather_reduce_into(black_box(&bag), black_box(&indices), &mut reduced)
                .unwrap()
        })
    });

    c.bench_function("eb_streamer_gather_reduce", |b| {
        b.iter_batched(
            EbStreamer::default,
            |mut streamer| {
                streamer
                    .gather_reduce(black_box(&bag), black_box(&indices))
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gemm_backends(c: &mut Criterion) {
    for &(m, k, n) in &[(64usize, 128usize, 64usize), (256, 512, 512)] {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 31) % 17) as f32 - 8.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13) % 11) as f32 * 0.125).collect();
        let mut out = vec![0.0f32; m * n];
        let mut ws = Workspace::new();
        for backend in KernelBackend::all() {
            c.bench_function(&format!("gemm_{}_{m}x{k}x{n}", backend.label()), |bench| {
                bench.iter(|| {
                    kernel::gemm_into(
                        backend,
                        black_box(&a),
                        black_box(&b),
                        &mut out,
                        m,
                        k,
                        n,
                        &mut ws,
                    )
                })
            });
        }
    }
}

fn bench_gemm(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 128, |r, col| ((r * 31 + col) % 17) as f32 - 8.0);
    let w = Matrix::from_fn(128, 64, |r, col| ((r + col * 13) % 11) as f32 * 0.125);

    c.bench_function("matrix_matmul_64x128x64", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&w)).unwrap())
    });

    c.bench_function("mlp_unit_tiled_matmul_64x128x64", |b| {
        b.iter_batched(
            MlpUnit::harpv2,
            |mut unit| unit.matmul(black_box(&a), black_box(&w)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_interaction(c: &mut Criterion) {
    let features = Matrix::from_fn(51, 32, |r, col| ((r * 7 + col) % 9) as f32 - 4.0);
    let fi = FeatureInteraction::new(51, 32).unwrap();
    c.bench_function("feature_interaction_51x32", |b| {
        b.iter(|| fi.interact(black_box(&features)).unwrap())
    });

    let mut out = vec![0.0f32; fi.output_dim()];
    c.bench_function("feature_interaction_into_51x32", |b| {
        b.iter(|| fi.interact_into(black_box(features.as_slice()), &mut out))
    });
}

criterion_group!(
    kernels,
    bench_gather_reduce,
    bench_gemm_backends,
    bench_gemm,
    bench_interaction
);
criterion_main!(kernels);
