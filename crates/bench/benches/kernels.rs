//! Criterion micro-benchmarks of the kernels underlying every experiment:
//! the `SparseLengthsSum` gather/reduce, the reference GEMM, the PE-array
//! tiled GEMM and the dot-product feature interaction.

use centaur::dense::MlpUnit;
use centaur::sparse::EbStreamer;
use centaur_dlrm::{EmbeddingBag, FeatureInteraction, Matrix};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_gather_reduce(c: &mut Criterion) {
    let bag = EmbeddingBag::random(8, 50_000, 32, 7);
    let indices: Vec<Vec<u32>> = (0..8)
        .map(|t| (0..40u32).map(|i| (t as u32 * 977 + i * 131) % 50_000).collect())
        .collect();

    c.bench_function("sparse_lengths_sum_reference", |b| {
        b.iter(|| bag.sparse_lengths_reduce(black_box(&indices)).unwrap())
    });

    c.bench_function("eb_streamer_gather_reduce", |b| {
        b.iter_batched(
            EbStreamer::default,
            |mut streamer| streamer.gather_reduce(black_box(&bag), black_box(&indices)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_gemm(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 128, |r, col| ((r * 31 + col) % 17) as f32 - 8.0);
    let w = Matrix::from_fn(128, 64, |r, col| ((r + col * 13) % 11) as f32 * 0.125);

    c.bench_function("matrix_matmul_64x128x64", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&w)).unwrap())
    });

    c.bench_function("mlp_unit_tiled_matmul_64x128x64", |b| {
        b.iter_batched(
            MlpUnit::harpv2,
            |mut unit| unit.matmul(black_box(&a), black_box(&w)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_interaction(c: &mut Criterion) {
    let features = Matrix::from_fn(51, 32, |r, col| ((r * 7 + col) % 9) as f32 - 4.0);
    let fi = FeatureInteraction::new(51, 32).unwrap();
    c.bench_function("feature_interaction_51x32", |b| {
        b.iter(|| fi.interact(black_box(&features)).unwrap())
    });
}

criterion_group!(kernels, bench_gather_reduce, bench_gemm, bench_interaction);
criterion_main!(kernels);
