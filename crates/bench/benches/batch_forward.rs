//! Criterion group `batch_forward`: the per-sample inference loop
//! (`DlrmModel::forward_sample_ws`, one `m = 1` GEMM per layer per sample)
//! against the batch-major path (`DlrmModel::forward_batch_into`, one GEMM
//! per layer for the whole batch), across every kernel backend and a sweep
//! of batch sizes.
//!
//! This is the evidence for the paper's core batching claim: the dense
//! complex only amortizes MLP weight reads when the batch rides through the
//! GEMM as `m` — the acceptance bar is batch-major ≥ 3× samples/s over the
//! per-sample loop at batch 64 on `Blocked`.

use centaur_dlrm::config::PaperModel;
use centaur_dlrm::kernel::KernelBackend;
use centaur_dlrm::{BatchWorkspace, DlrmModel, ModelWorkspace};
use centaur_workload::{FunctionalBatch, IndexDistribution, RequestGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn request(model: &DlrmModel, batch: usize) -> FunctionalBatch {
    let mut generator = RequestGenerator::new(model.config(), IndexDistribution::Uniform, 0xBA7C4);
    generator.functional_batch(batch)
}

fn bench_batch_forward(c: &mut Criterion) {
    // DLRM(6) is the paper's MLP-heavy configuration (heavyweight MLP, two
    // lookups per table) — the workload whose dense compute batching is
    // supposed to amortize. Tables are scaled down (the MLP shapes, which
    // are what is being measured, stay the paper's).
    let config = PaperModel::Dlrm6.config().with_rows_per_table(4096);
    let model = DlrmModel::random(&config, 3).expect("valid model");

    for &batch in &[16usize, 64] {
        let req = request(&model, batch);
        for backend in KernelBackend::all() {
            let label = backend.label();

            let mut sample_ws = ModelWorkspace::new();
            let mut out = vec![0.0f32; batch];
            c.bench_function(&format!("per_sample_{label}_b{batch}"), |b| {
                b.iter(|| {
                    for (i, indices) in req.sparse.iter().enumerate() {
                        out[i] = model
                            .forward_sample_ws(
                                backend,
                                black_box(req.dense.row(i)),
                                black_box(indices),
                                &mut sample_ws,
                            )
                            .unwrap();
                    }
                })
            });

            let mut batch_ws = BatchWorkspace::new();
            c.bench_function(&format!("batch_major_{label}_b{batch}"), |b| {
                b.iter(|| {
                    model
                        .forward_batch_into(
                            backend,
                            black_box(&req.dense),
                            black_box(&req.sparse),
                            &mut out,
                            &mut batch_ws,
                        )
                        .unwrap()
                })
            });
        }
    }
}

criterion_group!(batch_forward, bench_batch_forward);
criterion_main!(batch_forward);
