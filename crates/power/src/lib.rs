//! # centaur-power
//!
//! Power and energy-efficiency models for the three evaluated systems
//! (Table IV and Figure 15(b) of the Centaur paper).
//!
//! The paper measures average socket-level power with `pcm-power` (CPU and
//! CPU+FPGA) and `nvprof` (GPU) and multiplies it by end-to-end inference
//! latency to obtain energy. This crate encodes those measured averages as
//! device constants and provides the same energy arithmetic, so any latency
//! produced by the system simulators can be converted into energy and
//! energy-efficiency comparisons.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

/// The three system design points the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SystemKind {
    /// The CPU-only baseline (Broadwell Xeon socket).
    CpuOnly,
    /// The CPU-GPU design (Xeon host + V100 over PCIe).
    CpuGpu,
    /// The Centaur CPU+FPGA design.
    Centaur,
}

impl SystemKind {
    /// All systems in the paper's presentation order.
    pub fn all() -> [SystemKind; 3] {
        [SystemKind::CpuGpu, SystemKind::CpuOnly, SystemKind::Centaur]
    }

    /// Display label used by the figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::CpuOnly => "CPU-only",
            SystemKind::CpuGpu => "CPU-GPU",
            SystemKind::Centaur => "Centaur",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Average power draw of one system while serving recommendation inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Which system this describes.
    pub system: SystemKind,
    /// Socket-level (host) power in watts, including memory DIMMs.
    pub host_watts: f64,
    /// Accelerator-device power in watts (zero for CPU-only; the FPGA's
    /// contribution is already included in the socket measurement for
    /// Centaur, matching the paper's methodology).
    pub device_watts: f64,
}

impl PowerModel {
    /// Table IV: the CPU-only baseline draws 80 W.
    pub fn cpu_only() -> Self {
        PowerModel {
            system: SystemKind::CpuOnly,
            host_watts: 80.0,
            device_watts: 0.0,
        }
    }

    /// Table IV: the CPU-GPU design draws 91 W (CPU) + 56 W (GPU).
    pub fn cpu_gpu() -> Self {
        PowerModel {
            system: SystemKind::CpuGpu,
            host_watts: 91.0,
            device_watts: 56.0,
        }
    }

    /// Table IV: the package-integrated CPU+FPGA draws 74 W.
    pub fn centaur() -> Self {
        PowerModel {
            system: SystemKind::Centaur,
            host_watts: 74.0,
            device_watts: 0.0,
        }
    }

    /// The power model for a given system kind.
    pub fn for_system(system: SystemKind) -> Self {
        match system {
            SystemKind::CpuOnly => PowerModel::cpu_only(),
            SystemKind::CpuGpu => PowerModel::cpu_gpu(),
            SystemKind::Centaur => PowerModel::centaur(),
        }
    }

    /// Total average power in watts.
    pub fn total_watts(&self) -> f64 {
        self.host_watts + self.device_watts
    }

    /// Energy in joules for an inference that takes `latency_ns`.
    pub fn energy_joules(&self, latency_ns: f64) -> f64 {
        self.total_watts() * latency_ns * 1e-9
    }

    /// Energy in millijoules for an inference that takes `latency_ns`.
    pub fn energy_mj(&self, latency_ns: f64) -> f64 {
        self.energy_joules(latency_ns) * 1e3
    }
}

/// One system's measured latency combined with its power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Which system.
    pub system: SystemKind,
    /// End-to-end latency in nanoseconds.
    pub latency_ns: f64,
    /// Energy per inference in joules.
    pub energy_joules: f64,
}

impl EnergyReport {
    /// Builds a report from a simulated latency.
    pub fn from_latency(system: SystemKind, latency_ns: f64) -> Self {
        EnergyReport {
            system,
            latency_ns,
            energy_joules: PowerModel::for_system(system).energy_joules(latency_ns),
        }
    }

    /// Performance (1/latency) of this system normalized to `baseline`.
    pub fn performance_vs(&self, baseline: &EnergyReport) -> f64 {
        baseline.latency_ns / self.latency_ns
    }

    /// Energy-efficiency (1/energy) of this system normalized to
    /// `baseline` — the quantity plotted in Figure 15(b).
    pub fn efficiency_vs(&self, baseline: &EnergyReport) -> f64 {
        baseline.energy_joules / self.energy_joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_power_values() {
        assert_eq!(PowerModel::cpu_only().total_watts(), 80.0);
        assert_eq!(PowerModel::cpu_gpu().total_watts(), 147.0);
        assert_eq!(PowerModel::centaur().total_watts(), 74.0);
        // Centaur draws less power than either baseline.
        assert!(PowerModel::centaur().total_watts() < PowerModel::cpu_only().total_watts());
        assert!(PowerModel::centaur().total_watts() < PowerModel::cpu_gpu().total_watts());
    }

    #[test]
    fn for_system_round_trips() {
        for system in SystemKind::all() {
            assert_eq!(PowerModel::for_system(system).system, system);
        }
        assert_eq!(SystemKind::Centaur.to_string(), "Centaur");
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = PowerModel::cpu_only();
        // 80 W for 1 ms = 80 mJ.
        let e = p.energy_joules(1_000_000.0);
        assert!((e - 0.08).abs() < 1e-12);
        assert!((p.energy_mj(1_000_000.0) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_combines_speedup_and_power_ratio() {
        // If Centaur is 10x faster and draws 74/80 of the power, its
        // energy-efficiency gain is 10 * 80/74 ≈ 10.8x.
        let cpu = EnergyReport::from_latency(SystemKind::CpuOnly, 1_000_000.0);
        let centaur = EnergyReport::from_latency(SystemKind::Centaur, 100_000.0);
        assert!((centaur.performance_vs(&cpu) - 10.0).abs() < 1e-9);
        let eff = centaur.efficiency_vs(&cpu);
        assert!((eff - 10.0 * 80.0 / 74.0).abs() < 1e-6);
        // Efficiency gain exceeds the speedup because Centaur also draws
        // less power — exactly why the paper's 19.5x efficiency ceiling is
        // above its 17.2x performance ceiling.
        assert!(eff > centaur.performance_vs(&cpu));
    }

    #[test]
    fn cpu_gpu_efficiency_penalised_by_power() {
        // Equal latency, but the CPU-GPU box burns 147 W vs 80 W.
        let cpu = EnergyReport::from_latency(SystemKind::CpuOnly, 500_000.0);
        let gpu = EnergyReport::from_latency(SystemKind::CpuGpu, 500_000.0);
        assert!((gpu.performance_vs(&cpu) - 1.0).abs() < 1e-9);
        assert!(gpu.efficiency_vs(&cpu) < 0.6);
    }
}
