//! End-to-end CPU-GPU inference timing: the CPU gathers and reduces the
//! embeddings (the tables do not fit in GPU memory), copies the reduced
//! embeddings and dense features to the GPU over PCIe, and the GPU executes
//! the feature interaction and MLPs.

use crate::config::GpuConfig;
use centaur_cpusim::{CpuConfig, CpuSystem, EmbeddingResult};
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::trace::InferenceTrace;
use serde::{Deserialize, Serialize};

/// Latency split of a CPU-GPU inference.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpuGpuBreakdown {
    /// CPU-side embedding gathers + reductions, in ns.
    pub embedding_ns: f64,
    /// Host→device copy of reduced embeddings and dense features plus the
    /// device→host copy of the results, in ns.
    pub transfer_ns: f64,
    /// GPU dense-layer execution (interaction + MLPs), in ns.
    pub gpu_dense_ns: f64,
    /// Remaining framework overhead, in ns.
    pub other_ns: f64,
}

impl CpuGpuBreakdown {
    /// Total end-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.embedding_ns + self.transfer_ns + self.gpu_dense_ns + self.other_ns
    }
}

/// Result of one simulated CPU-GPU batched inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuGpuInferenceResult {
    /// Batch size of the request.
    pub batch: usize,
    /// Latency split.
    pub breakdown: CpuGpuBreakdown,
    /// CPU-side embedding stage detail.
    pub embedding: EmbeddingResult,
    /// Dense FLOPs executed on the GPU.
    pub gpu_flops: u64,
}

impl CpuGpuInferenceResult {
    /// End-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }
}

/// The CPU-GPU system model.
#[derive(Debug, Clone)]
pub struct CpuGpuSystem {
    cpu: CpuSystem,
    gpu: GpuConfig,
}

impl CpuGpuSystem {
    /// Creates a CPU-GPU system from explicit CPU and GPU configurations.
    pub fn new(cpu: CpuConfig, gpu: GpuConfig) -> Self {
        CpuGpuSystem {
            cpu: CpuSystem::new(cpu),
            gpu,
        }
    }

    /// The paper's evaluation point: Broadwell Xeon host + DGX-1 V100.
    pub fn dgx1() -> Self {
        CpuGpuSystem::new(CpuConfig::broadwell_xeon(), GpuConfig::dgx1_v100())
    }

    /// The GPU configuration in use.
    pub fn gpu_config(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The CPU configuration in use.
    pub fn cpu_config(&self) -> &CpuConfig {
        self.cpu.config()
    }

    /// Bytes that must cross PCIe to the device for one batch: the reduced
    /// embeddings (one vector per table per sample) plus the dense features.
    pub fn host_to_device_bytes(model: &ModelConfig, batch: usize) -> u64 {
        let reduced = (model.num_tables * model.embedding_dim * 4) as u64;
        (reduced + model.dense_bytes_per_sample()) * batch as u64
    }

    /// Warms the CPU cache hierarchy (embedding gathers happen on the CPU in
    /// this design too).
    pub fn warm_up(&mut self, trace: &InferenceTrace) {
        self.cpu.warm_up(trace);
    }

    /// Simulates one batched inference.
    pub fn simulate(&mut self, trace: &InferenceTrace) -> CpuGpuInferenceResult {
        let batch = trace.batch_size();
        let model = &trace.config;

        // 1. CPU-side embedding gathers + reductions (identical to CPU-only).
        let cpu_result = self.cpu.simulate(trace);
        let embedding = cpu_result.embedding;

        // 2. PCIe transfers: reduced embeddings + dense features out,
        //    probabilities back.
        let h2d_bytes = Self::host_to_device_bytes(model, batch);
        let d2h_bytes = 4 * batch as u64;
        let transfer_ns =
            self.gpu.pcie.transfer_time_ns(h2d_bytes) + self.gpu.pcie.transfer_time_ns(d2h_bytes);

        // 3. GPU dense execution: same operator count as the CPU, but each
        //    operator pays a kernel-launch overhead and runs at GPU GEMM
        //    throughput.
        let gpu_flops = model.dense_flops_per_sample() * batch.max(1) as u64;
        let operators = centaur_cpusim::DenseEngine::operator_count(model);
        let gpu_dense_ns = gpu_flops as f64 / self.gpu.effective_gemm_gflops(batch)
            + operators as f64 * self.gpu.kernel_launch_ns;

        // 4. Framework overhead on the host (same as CPU-only).
        let other_ns = cpu_result.breakdown.other_ns;

        CpuGpuInferenceResult {
            batch,
            breakdown: CpuGpuBreakdown {
                embedding_ns: embedding.latency_ns,
                transfer_ns,
                gpu_dense_ns,
                other_ns,
            },
            embedding,
            gpu_flops,
        }
    }

    /// Convenience: warm up with `warmup` then measure `trace`.
    pub fn simulate_warm(
        &mut self,
        warmup: &InferenceTrace,
        trace: &InferenceTrace,
    ) -> CpuGpuInferenceResult {
        self.warm_up(warmup);
        self.simulate(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    fn run_both(model: PaperModel, batch: usize) -> (CpuGpuInferenceResult, f64) {
        let config = model.config();
        let mut warm_gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 100);
        let mut gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 200);
        let warm = warm_gen.inference_trace(batch);
        let trace = gen.inference_trace(batch);

        let mut gpu_system = CpuGpuSystem::dgx1();
        let gpu_result = gpu_system.simulate_warm(&warm, &trace);

        let mut cpu_system = CpuSystem::broadwell();
        let cpu_result = cpu_system.simulate_warm(&warm, &trace);
        (gpu_result, cpu_result.total_ns())
    }

    #[test]
    fn breakdown_components_positive() {
        let (r, _) = run_both(PaperModel::Dlrm1, 16);
        assert!(r.breakdown.embedding_ns > 0.0);
        assert!(r.breakdown.transfer_ns > 0.0);
        assert!(r.breakdown.gpu_dense_ns > 0.0);
        assert!(r.total_ns() > 0.0);
        assert!(r.gpu_flops > 0);
    }

    #[test]
    fn transfer_includes_pcie_latency_floor() {
        let (r, _) = run_both(PaperModel::Dlrm1, 1);
        assert!(r.breakdown.transfer_ns >= 2.0 * GpuConfig::dgx1_v100().pcie.latency_ns);
    }

    #[test]
    fn cpu_only_wins_for_embedding_bound_models_at_low_batch() {
        // The paper's observation: offloading the small MLPs to the GPU does
        // not pay for the PCIe copy on embedding-dominated models.
        let (gpu, cpu_total) = run_both(PaperModel::Dlrm2, 1);
        assert!(
            gpu.total_ns() > cpu_total,
            "CPU-GPU {:.0} ns should be slower than CPU-only {:.0} ns",
            gpu.total_ns(),
            cpu_total
        );
    }

    #[test]
    fn gpu_helps_mlp_heavy_model_at_large_batch() {
        // DLRM(6) at batch 128 has enough dense work for the V100 to win
        // despite the transfer.
        let (gpu, cpu_total) = run_both(PaperModel::Dlrm6, 128);
        assert!(
            gpu.total_ns() < cpu_total,
            "CPU-GPU {:.0} ns should beat CPU-only {:.0} ns on the MLP-heavy model",
            gpu.total_ns(),
            cpu_total
        );
    }

    #[test]
    fn embedding_time_matches_cpu_only_design() {
        // The embedding stage is executed by the same CPU engine in both
        // designs, so with identical state it should take identical time.
        let config = PaperModel::Dlrm3.config();
        let mut gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 5);
        let trace = gen.inference_trace(8);
        let mut cpu = CpuSystem::broadwell();
        let mut hybrid = CpuGpuSystem::dgx1();
        let cpu_emb = cpu.simulate(&trace).embedding.latency_ns;
        let gpu_emb = hybrid.simulate(&trace).embedding.latency_ns;
        assert!((cpu_emb - gpu_emb).abs() < 1e-6);
    }

    #[test]
    fn host_to_device_bytes_scale_with_batch_and_tables() {
        let m = PaperModel::Dlrm2.config();
        let b1 = CpuGpuSystem::host_to_device_bytes(&m, 1);
        let b64 = CpuGpuSystem::host_to_device_bytes(&m, 64);
        assert_eq!(b64, 64 * b1);
        assert_eq!(b1, (50 * 32 * 4 + 13 * 4) as u64);
    }
}
