//! # centaur-gpusim
//!
//! Timing model of the **CPU-GPU** baseline the paper compares against: the
//! embedding tables stay in host memory (they do not fit in GPU HBM), so the
//! CPU performs the gathers and reductions, ships the reduced embeddings and
//! dense features over PCIe, and a V100-class GPU executes the feature
//! interaction and MLP layers.
//!
//! The paper finds this design usually *loses* to CPU-only because the PCIe
//! copy and kernel-launch overheads outweigh the GPU's GEMM advantage for
//! the small dense layers of recommendation models — the same behaviour this
//! model reproduces.
//!
//! ```
//! use centaur_dlrm::PaperModel;
//! use centaur_gpusim::CpuGpuSystem;
//! use centaur_workload::{IndexDistribution, RequestGenerator};
//!
//! let model = PaperModel::Dlrm1.config();
//! let mut generator = RequestGenerator::new(&model, IndexDistribution::Uniform, 1);
//! let trace = generator.inference_trace(16);
//! let mut system = CpuGpuSystem::dgx1();
//! let result = system.simulate(&trace);
//! assert!(result.breakdown.transfer_ns > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod system;

pub use config::{GpuConfig, PcieConfig};
pub use system::{CpuGpuBreakdown, CpuGpuInferenceResult, CpuGpuSystem};
