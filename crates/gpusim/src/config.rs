//! GPU device and PCIe interconnect configuration for the CPU-GPU baseline
//! (the paper evaluates an NVIDIA DGX-1 V100 attached over PCIe).

use serde::{Deserialize, Serialize};

/// PCIe link model: fixed software/DMA latency plus a bandwidth term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieConfig {
    /// Effective host→device bandwidth in GB/s (PCIe 3.0 x16 sustains
    /// ~12 GB/s of its 16 GB/s peak).
    pub bandwidth_gbs: f64,
    /// Fixed per-transfer latency in nanoseconds (driver, DMA setup).
    pub latency_ns: f64,
}

impl PcieConfig {
    /// PCIe 3.0 x16 as found in a DGX-1.
    pub fn gen3_x16() -> Self {
        PcieConfig {
            bandwidth_gbs: 12.0,
            latency_ns: 15_000.0,
        }
    }

    /// Time to move `bytes` over the link (one transfer).
    pub fn transfer_time_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bandwidth_gbs
    }
}

/// GPU compute model for the dense layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable device name.
    pub name: String,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Fraction of peak reachable by large cuBLAS GEMMs.
    pub gemm_peak_efficiency: f64,
    /// Batch size at which utilization reaches half of its asymptote (GPUs
    /// need large batches to fill their SMs).
    pub gemm_half_batch: f64,
    /// Kernel launch + framework dispatch overhead per operator, in ns.
    pub kernel_launch_ns: f64,
    /// Host↔device interconnect.
    pub pcie: PcieConfig,
}

impl GpuConfig {
    /// An NVIDIA V100 (DGX-1 node) class device.
    pub fn dgx1_v100() -> Self {
        GpuConfig {
            name: "NVIDIA Tesla V100 (DGX-1)".to_string(),
            peak_gflops: 15_700.0,
            gemm_peak_efficiency: 0.6,
            gemm_half_batch: 256.0,
            kernel_launch_ns: 10_000.0,
            pcie: PcieConfig::gen3_x16(),
        }
    }

    /// Effective GEMM throughput in GFLOP/s for a given batch size.
    pub fn effective_gemm_gflops(&self, batch: usize) -> f64 {
        let batch = batch.max(1) as f64;
        let utilization = batch / (batch + self.gemm_half_batch);
        let floor = 0.002;
        self.peak_gflops * self.gemm_peak_efficiency * (floor + (1.0 - floor) * utilization)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::dgx1_v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_transfer_time_has_latency_floor() {
        let p = PcieConfig::gen3_x16();
        let tiny = p.transfer_time_ns(64);
        assert!(tiny >= p.latency_ns);
        // 1.2 GB at 12 GB/s = 100 ms dominated by bandwidth.
        let big = p.transfer_time_ns(1_200_000_000);
        assert!((big - (p.latency_ns + 1e8)).abs() / big < 1e-6);
    }

    #[test]
    fn v100_peak_is_teraflops() {
        let g = GpuConfig::dgx1_v100();
        assert!(g.peak_gflops > 10_000.0);
    }

    #[test]
    fn gpu_utilization_poor_at_small_batch() {
        let g = GpuConfig::dgx1_v100();
        let b1 = g.effective_gemm_gflops(1);
        let b1024 = g.effective_gemm_gflops(1024);
        assert!(b1 < 0.01 * g.peak_gflops, "b1 = {b1}");
        assert!(b1024 > 0.4 * g.peak_gflops);
        assert!(b1 < b1024);
    }

    #[test]
    fn gpu_beats_cpu_only_at_large_batches() {
        // Sanity: the V100 model must out-GFLOP a Broadwell socket when
        // batches are large enough to fill it.
        let g = GpuConfig::dgx1_v100();
        let cpu_peak = 14.0 * 2.4 * 16.0;
        assert!(g.effective_gemm_gflops(512) > cpu_peak);
    }

    #[test]
    fn default_is_v100() {
        assert_eq!(GpuConfig::default(), GpuConfig::dgx1_v100());
    }
}
