//! Seeded `suppression` violations (the framework lints itself): a
//! reason-less suppression and an unused one. Lexed as text, never
//! compiled.

pub fn gemm_into(out: &mut [f32]) {
    // lint: allow(alloc-free-path)
    let v = Vec::new();
    // lint: allow(lock-discipline) — nothing here locks at all
    out[0] = v.len() as f32;
}
