//! Seeded `alloc-free-path` violations. Lexed as text by the fixture
//! tests, never compiled (the workspace walker skips `tests/fixtures/`).

pub fn forward_rows_into(out: &mut [f32]) {
    let v = Vec::new();
    let w = vec![0.0f32; 8];
    let label = format!("{} rows", out.len());
    out[0] = v.len() as f32 + w[0] + label.len() as f32;
}

pub fn scratch_ws(buf: &mut [f32]) {
    let copy = buf.to_vec();
    let boxed = Box::new(copy.len());
    let owned = String::from("hot");
    let gathered: Vec<f32> = buf.iter().copied().collect();
    buf[0] = *boxed as f32 + owned.len() as f32 + gathered[0];
}

pub fn cold_report(out: &[f32]) -> String {
    // Not a hot-path name: allocating here is fine.
    format!("{} rows", out.len())
}

pub fn suppressed_setup_into(out: &mut Vec<f32>) {
    // lint: allow(alloc-free-path) — one-time growth to the high-water mark
    out.extend(vec![0.0; 4]);
}
