//! Seeded `env-knob-registry` violations. Lexed as text by the fixture
//! tests, never compiled. The fixture test feeds this in under a
//! non-registry production path, so the `var` read below is both outside
//! the registry modules and an undocumented knob.

pub fn rogue_read() -> String {
    std::env::var("CENTAUR_FIXTURE_ROGUE").unwrap_or_default()
}
