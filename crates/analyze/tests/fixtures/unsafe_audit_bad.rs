//! Seeded `unsafe-audit` violations. Lexed as text by the fixture tests,
//! never compiled.

pub unsafe fn undocumented_kernel(ptr: *mut f32) {
    *ptr = 0.0;
}

pub fn wrapper(ptr: *mut f32) {
    unsafe {
        *ptr = 1.0;
    }
}

// SAFETY: ptr is valid, aligned, and exclusively owned by the caller for
// the duration of the call (documented precondition of this fixture).
pub unsafe fn documented_kernel(ptr: *mut f32) {
    *ptr = 2.0;
}
