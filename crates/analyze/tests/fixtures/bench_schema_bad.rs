//! Seeded `bench-schema` violations. Lexed as text by the fixture tests,
//! never compiled.

pub const BENCH_FIXTURE_COLUMNS: &[&str] = &["unit", "ghost"];

pub fn bench_fixture_json() -> String {
    format!("{{\"unit\": \"s\", \"rogue\": 1}}")
}

pub fn bench_orphan_json() -> String {
    String::new()
}

pub fn path() -> &'static str {
    "BENCH_phantom.json"
}
