//! Seeded `lock-discipline` violations. Lexed as text by the fixture
//! tests, never compiled.

pub fn nested(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

pub fn wait_outside_loop(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {
    let g = m.lock().unwrap();
    let g = cv.wait(g).unwrap();
    let _ = *g;
}

pub fn guard_across_wait(
    m: &std::sync::Mutex<bool>,
    other: &std::sync::Mutex<u32>,
    cv: &std::sync::Condvar,
) {
    let held = other.lock().unwrap();
    let mut g = m.lock().unwrap();
    while !*g {
        g = cv.wait(g).unwrap();
    }
    let _ = *held;
}

pub fn disciplined(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {
    let mut g = m.lock().unwrap();
    while !*g {
        g = cv.wait(g).unwrap();
    }
}
