//! Per-lint fixture tests. Each fixture under `tests/fixtures/` seeds
//! known-bad snippets; every seeded violation must be reported at its
//! exact line (the assertions below hard-code fixture line numbers, so
//! editing a fixture means re-checking them). The fixtures are lexed as
//! text and never compiled — the workspace walker skips `tests/fixtures/`
//! directories, so they also never reach the real CI scan.
//!
//! Each fixture is fed in under a synthetic production-crate path: the
//! real path (`crates/analyze/tests/fixtures/…`) contains `/tests/`,
//! which would exempt it from the alloc-free and lock-discipline lints.

use centaur_analyze::analyze_sources;

/// Runs the full lint stack over one fixture and returns rendered
/// `path:line: [rule] message` findings plus the inline-suppressed count.
fn run(path: &str, src: &str, readme: &str) -> (Vec<String>, usize) {
    let analysis = analyze_sources(&[(path.to_string(), src.to_string())], readme);
    let rendered = analysis.findings.iter().map(|d| d.to_string()).collect();
    (rendered, analysis.suppressed)
}

fn assert_finding(findings: &[String], location_and_rule: &str) {
    assert!(
        findings.iter().any(|f| f.starts_with(location_and_rule)),
        "expected a finding starting with `{location_and_rule}`, got:\n{}",
        findings.join("\n")
    );
}

#[test]
fn alloc_free_fixture_reports_every_banned_construct() {
    let (findings, suppressed) = run(
        "crates/serve/src/fixture_alloc.rs",
        include_str!("fixtures/alloc_free_bad.rs"),
        "",
    );
    let expected = [
        (
            "crates/serve/src/fixture_alloc.rs:5: [alloc-free-path]",
            "Vec::new",
        ),
        (
            "crates/serve/src/fixture_alloc.rs:6: [alloc-free-path]",
            "vec![",
        ),
        (
            "crates/serve/src/fixture_alloc.rs:7: [alloc-free-path]",
            "format!",
        ),
        (
            "crates/serve/src/fixture_alloc.rs:12: [alloc-free-path]",
            ".to_vec()",
        ),
        (
            "crates/serve/src/fixture_alloc.rs:13: [alloc-free-path]",
            "Box::new",
        ),
        (
            "crates/serve/src/fixture_alloc.rs:14: [alloc-free-path]",
            "String::from",
        ),
        (
            "crates/serve/src/fixture_alloc.rs:15: [alloc-free-path]",
            ".collect()",
        ),
    ];
    for (loc, construct) in expected {
        assert_finding(&findings, loc);
        assert!(
            findings
                .iter()
                .any(|f| f.starts_with(loc) && f.contains(construct)),
            "{loc} should name `{construct}`:\n{}",
            findings.join("\n")
        );
    }
    assert_eq!(findings.len(), expected.len(), "{findings:?}");
    assert_eq!(suppressed, 1, "the vec![ in suppressed_setup_into");
}

#[test]
fn unsafe_audit_fixture_reports_undocumented_sites_only() {
    let (findings, _) = run(
        "crates/dlrm/src/fixture_unsafe.rs",
        include_str!("fixtures/unsafe_audit_bad.rs"),
        "",
    );
    assert_finding(
        &findings,
        "crates/dlrm/src/fixture_unsafe.rs:4: [unsafe-audit]",
    );
    assert_finding(
        &findings,
        "crates/dlrm/src/fixture_unsafe.rs:9: [unsafe-audit]",
    );
    assert_eq!(
        findings.len(),
        2,
        "documented_kernel must pass: {findings:?}"
    );
}

#[test]
fn lock_discipline_fixture_reports_all_three_shapes() {
    let (findings, _) = run(
        "crates/serve/src/fixture_lock.rs",
        include_str!("fixtures/lock_discipline_bad.rs"),
        "",
    );
    let expected = [
        // nested(): second mutex acquired under the first guard.
        (
            "crates/serve/src/fixture_lock.rs:6: [lock-discipline]",
            "nested acquisition",
        ),
        // wait_outside_loop(): condvar wait with no retry loop.
        (
            "crates/serve/src/fixture_lock.rs:12: [lock-discipline]",
            "outside a `while`/`loop`",
        ),
        // guard_across_wait(): the second lock under `held`…
        (
            "crates/serve/src/fixture_lock.rs:22: [lock-discipline]",
            "nested acquisition",
        ),
        // …and the wait parking while `held` is still held.
        (
            "crates/serve/src/fixture_lock.rs:24: [lock-discipline]",
            "parks while guard",
        ),
    ];
    for (loc, shape) in expected {
        assert!(
            findings
                .iter()
                .any(|f| f.starts_with(loc) && f.contains(shape)),
            "expected `{loc}` … `{shape}`:\n{}",
            findings.join("\n")
        );
    }
    assert_eq!(
        findings.len(),
        expected.len(),
        "disciplined() must pass: {findings:?}"
    );
}

#[test]
fn env_registry_fixture_reports_rogue_read_and_missing_doc() {
    let (findings, _) = run(
        "crates/serve/src/fixture_env.rs",
        include_str!("fixtures/env_registry_bad.rs"),
        "README with no knob table at all.",
    );
    let loc = "crates/serve/src/fixture_env.rs:7: [env-knob-registry]";
    assert!(
        findings
            .iter()
            .any(|f| f.starts_with(loc) && f.contains("outside the registry modules")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.starts_with(loc) && f.contains("not documented in README.md")),
        "{findings:?}"
    );
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn bench_schema_fixture_reports_all_four_mismatch_kinds() {
    let (findings, _) = run(
        "crates/bench/src/fixture_bench.rs",
        include_str!("fixtures/bench_schema_bad.rs"),
        "",
    );
    let expected = [
        // Declared column never written, reported at the const.
        (
            "crates/bench/src/fixture_bench.rs:4: [bench-schema]",
            "`\"ghost\"` is never written",
        ),
        // Written column never declared, reported at the write.
        (
            "crates/bench/src/fixture_bench.rs:7: [bench-schema]",
            "undeclared column `\"rogue\"`",
        ),
        // Writer with no schema const at all.
        (
            "crates/bench/src/fixture_bench.rs:10: [bench-schema]",
            "no schema const `BENCH_ORPHAN_COLUMNS`",
        ),
        // Trajectory filename with no schema const.
        (
            "crates/bench/src/fixture_bench.rs:15: [bench-schema]",
            "no `BENCH_PHANTOM_COLUMNS` schema exists",
        ),
    ];
    for (loc, detail) in expected {
        assert!(
            findings
                .iter()
                .any(|f| f.starts_with(loc) && f.contains(detail)),
            "expected `{loc}` … `{detail}`:\n{}",
            findings.join("\n")
        );
    }
    assert_eq!(findings.len(), expected.len(), "{findings:?}");
}

#[test]
fn suppression_fixture_reports_reasonless_and_unused_suppressions() {
    let (findings, suppressed) = run(
        "crates/serve/src/fixture_suppression.rs",
        include_str!("fixtures/suppression_bad.rs"),
        "",
    );
    // The reason-less suppression is itself a finding…
    assert!(
        findings.iter().any(|f| f
            .starts_with("crates/serve/src/fixture_suppression.rs:6: [suppression]")
            && f.contains("missing its mandatory reason")),
        "{findings:?}"
    );
    // …and does NOT silence the allocation on the next line.
    assert_finding(
        &findings,
        "crates/serve/src/fixture_suppression.rs:7: [alloc-free-path]",
    );
    // A well-formed suppression that matches nothing is flagged too.
    assert!(
        findings.iter().any(|f| f
            .starts_with("crates/serve/src/fixture_suppression.rs:8: [suppression]")
            && f.contains("silences nothing")),
        "{findings:?}"
    );
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn the_workspace_itself_is_clean() {
    // The committed policy: an empty baseline over a clean tree. Walk the
    // real workspace exactly as the CLI does and require zero findings.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analyze has a workspace root two levels up")
        .to_path_buf();
    let analysis = centaur_analyze::analyze_workspace(&root).expect("workspace walk");
    let rendered: Vec<String> = analysis.findings.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has findings:\n{}",
        rendered.join("\n")
    );
    // Every unsafe site in the tree carries a SAFETY comment.
    assert!(analysis.inventory.iter().all(|s| s.documented));
}
