//! Diagnostics, inline-suppression application, and the committed
//! baseline file.
//!
//! The baseline exists so the tool can be adopted on a codebase with
//! pre-existing findings and still gate *new* ones; this repo's policy
//! (and committed state) is an **empty** baseline — every finding is
//! either fixed or suppressed inline with a reason at the site.

use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fmt;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule name (`alloc-free-path`, `unsafe-audit`, ...).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// The baseline-file form of this diagnostic. Deliberately excludes
    /// the message so reworded diagnostics do not churn a baseline.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}:{}", self.rule, self.path, self.line)
    }
}

/// Outcome of applying inline suppressions to a file's raw findings.
pub struct Suppressed {
    /// Findings that survived (not suppressed).
    pub kept: Vec<Diagnostic>,
    /// Count of findings silenced by a well-formed suppression.
    pub suppressed: usize,
}

/// Applies a file's inline suppressions to its findings. A suppression
/// covers its own line and the next line, for one rule. Malformed
/// suppressions and suppressions that silence nothing are themselves
/// reported (rule `suppression`) — a stale `allow` hides nothing and
/// must be deleted, which keeps every committed suppression honest.
pub fn apply_suppressions(file: &SourceFile, findings: Vec<Diagnostic>) -> Suppressed {
    let mut used = vec![false; file.suppressions.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for d in findings {
        let hit = file
            .suppressions
            .iter()
            .enumerate()
            .find(|(_, s)| s.rule == d.rule && (s.line == d.line || s.line + 1 == d.line));
        match hit {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(d),
        }
    }
    for (line, what) in &file.malformed_suppressions {
        kept.push(Diagnostic {
            path: file.path.clone(),
            line: *line,
            rule: "suppression",
            message: what.clone(),
        });
    }
    for (s, used) in file.suppressions.iter().zip(&used) {
        if !used {
            kept.push(Diagnostic {
                path: file.path.clone(),
                line: s.line,
                rule: "suppression",
                message: format!(
                    "suppression for `{}` silences nothing on line {} or {} — delete it",
                    s.rule,
                    s.line,
                    s.line + 1
                ),
            });
        }
    }
    Suppressed { kept, suppressed }
}

/// The committed baseline: a set of `rule\tpath:line` keys. Lines starting
/// with `#` and blank lines are ignored.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    pub fn parse(content: &str) -> Baseline {
        Baseline {
            keys: content
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.keys.contains(&d.baseline_key())
    }

    /// Baseline entries that no longer correspond to any finding; these
    /// are errors under `--deny` so the baseline always reflects reality.
    pub fn stale<'a>(&'a self, findings: &[Diagnostic]) -> Vec<&'a str> {
        let live: BTreeSet<String> = findings.iter().map(Diagnostic::baseline_key).collect();
        self.keys
            .iter()
            .filter(|k| !live.contains(*k))
            .map(String::as_str)
            .collect()
    }

    /// Renders findings as baseline-file content.
    pub fn render(findings: &[Diagnostic]) -> String {
        let mut out = String::from(
            "# centaur-analyze baseline — one `rule\\tpath:line` per finding.\n\
             # Policy: keep this file EMPTY; fix findings or suppress inline\n\
             # with `// lint: allow(<rule>) — <reason>` at the site.\n",
        );
        let keys: BTreeSet<String> = findings.iter().map(Diagnostic::baseline_key).collect();
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn diag(path: &str, line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message: "m".to_string(),
        }
    }

    #[test]
    fn suppression_covers_same_and_next_line_for_its_rule_only() {
        let src = "\
// lint: allow(alloc-free-path) — warm-up only\n\
let x = 1;\n\
let y = 2;\n";
        let f = SourceFile::parse("a.rs", src);
        let out = apply_suppressions(
            &f,
            vec![
                diag("a.rs", 2, "alloc-free-path"), // covered (next line)
                diag("a.rs", 3, "alloc-free-path"), // not covered
                diag("a.rs", 2, "lock-discipline"), // wrong rule
            ],
        );
        assert_eq!(out.suppressed, 1);
        let rules: Vec<_> = out.kept.iter().map(|d| (d.rule, d.line)).collect();
        assert_eq!(rules, [("alloc-free-path", 3), ("lock-discipline", 2)]);
    }

    #[test]
    fn unused_and_malformed_suppressions_are_reported() {
        let src = "let a = 1; // lint: allow(unsafe-audit) — nothing here to silence\n\
                   let b = 2; // lint: allow(unsafe-audit)\n";
        let f = SourceFile::parse("a.rs", src);
        let out = apply_suppressions(&f, vec![]);
        assert_eq!(out.suppressed, 0);
        assert_eq!(out.kept.len(), 2);
        assert!(out.kept.iter().all(|d| d.rule == "suppression"));
        assert!(out
            .kept
            .iter()
            .any(|d| d.message.contains("silences nothing")));
        assert!(out
            .kept
            .iter()
            .any(|d| d.message.contains("mandatory reason")));
    }

    #[test]
    fn baseline_roundtrip_and_staleness() {
        let d1 = diag("a.rs", 10, "unsafe-audit");
        let d2 = diag("b.rs", 20, "lock-discipline");
        let content = Baseline::render(&[d1.clone(), d2.clone()]);
        let base = Baseline::parse(&content);
        assert_eq!(base.len(), 2);
        assert!(base.contains(&d1) && base.contains(&d2));
        let stale = base.stale(&[d1]);
        assert_eq!(stale, [d2.baseline_key().as_str()]);
        assert!(Baseline::parse("# only comments\n\n").is_empty());
    }
}
