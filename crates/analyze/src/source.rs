//! Per-file source model built on top of the lexer: function items with
//! body extents, `#[cfg(test)] mod` extents, and inline lint suppressions.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, **inclusive of both braces**.
    /// `None` for bodiless declarations (trait methods, extern).
    pub body: Option<(usize, usize)>,
}

/// An inline suppression: `// lint: allow(<rule>) — <reason>`.
///
/// The reason is mandatory; a reasonless `allow` is itself reported (rule
/// `suppression`). A suppression covers diagnostics of its rule on the
/// comment's own line and on the following line, so it can either trail
/// the offending code or sit on its own line directly above it.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    pub line: u32,
}

/// One parsed source file plus everything the lints need to navigate it.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub functions: Vec<FnItem>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` blocks.
    pub test_extents: Vec<(u32, u32)>,
    /// Well-formed suppressions, in file order.
    pub suppressions: Vec<Suppression>,
    /// Lines of `lint: allow` comments that failed to parse (no rule or no
    /// reason), with a description of what is wrong.
    pub malformed_suppressions: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let functions = find_functions(&lexed.tokens);
        let test_extents = find_test_extents(&lexed.tokens);
        let (suppressions, malformed_suppressions) = parse_suppressions(&lexed.comments);
        SourceFile {
            path: path.replace('\\', "/"),
            tokens: lexed.tokens,
            comments: lexed.comments,
            functions,
            test_extents,
            suppressions,
            malformed_suppressions,
        }
    }

    /// Is this file test-only or example code by path convention?
    /// Integration tests, benches, and examples are exercised dynamically
    /// (counting allocator, property tests); the lexical invariants target
    /// production `src/` code.
    pub fn is_test_path(&self) -> bool {
        ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|d| self.path.contains(d))
            || self.path.starts_with("tests/")
            || self.path.starts_with("examples/")
    }

    /// Is `line` inside a `#[cfg(test)] mod` block?
    pub fn in_test_extent(&self, line: u32) -> bool {
        self.test_extents
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Is there a `// SAFETY:` comment ending within `window` lines above
    /// `line` (or on `line` itself)?
    pub fn has_safety_comment_near(&self, line: u32, window: u32) -> bool {
        self.comments.iter().enumerate().any(|(i, c)| {
            if !c.text.contains("SAFETY:") {
                return false;
            }
            // A `// SAFETY:` line usually heads a multi-line explanation;
            // the contiguous run of comment lines below it is one block,
            // and the *block* end must sit within the window.
            let mut end = c.end_line;
            for later in &self.comments[i + 1..] {
                if later.start_line == end + 1 {
                    end = later.end_line;
                } else if later.start_line > end + 1 {
                    break;
                }
            }
            end <= line && end + window >= line
        })
    }

    /// Name of the innermost function whose body contains token `idx`, if
    /// any. Falls back to a function whose `fn` keyword token *starts* at
    /// or before `idx` when `idx` sits in the signature.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.functions
            .iter()
            .filter(|f| matches!(f.body, Some((lo, hi)) if (lo..=hi).contains(&idx)))
            .max_by_key(|f| f.body.unwrap().0)
    }
}

/// Scans the token stream for `fn` items and matches their body braces.
fn find_functions(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            // `fn` is always followed by the item name (the `Fn` traits
            // are distinct identifiers, and closures have no `fn` token).
            if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                let line = tokens[i].line;
                let name = name_tok.text.clone();
                // The body is the first `{` at zero paren/bracket depth
                // after the signature; a `;` first means no body. Rust
                // forbids bare struct literals in signature positions, so
                // this cannot misfire on a return-type expression.
                let mut j = i + 2;
                let mut depth = 0i32;
                let mut body = None;
                while let Some(t) = tokens.get(j) {
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                body = Some((j, match_brace(tokens, j)));
                                break;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                out.push(FnItem { name, line, body });
            }
        }
        i += 1;
    }
    out
}

/// Returns the index of the `}` matching the `{` at `open` (or the last
/// token when unbalanced — the compiler rejects such files anyway).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Finds `#[cfg(test)]` attributes followed by a `mod` item and records the
/// line extent of the mod's braces. Intervening attributes/doc comments
/// between the cfg and the `mod` keyword are tolerated.
fn find_test_extents(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if is_cfg_test {
            // Skip any further attributes, then require `mod name {`.
            let mut j = i + 7;
            while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                // Skip to the matching `]`.
                let mut depth = 0i32;
                while let Some(t) = tokens.get(j) {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("mod"))
                && tokens
                    .get(j + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
                && tokens.get(j + 2).is_some_and(|t| t.is_punct('{'))
            {
                let open = j + 2;
                let close = match_brace(tokens, open);
                out.push((tokens[i].line, tokens[close].line));
                i = close;
            }
        }
        i += 1;
    }
    out
}

/// Parses `lint: allow(<rule>) — <reason>` comments. Accepts `—`, `--`,
/// `-`, or `:` as the reason separator; the reason must be non-empty.
fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad.push((
                c.start_line,
                "expected `allow(<rule>)` after `lint:`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push((c.start_line, "unclosed `allow(` in suppression".to_string()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if rule.is_empty() {
            bad.push((c.start_line, "empty rule name in `allow()`".to_string()));
            continue;
        }
        let mut reason = rest[close + 1..].trim_start();
        let mut had_separator = false;
        for sep in ["—", "--", "-", ":"] {
            if let Some(r) = reason.strip_prefix(sep) {
                reason = r.trim_start();
                had_separator = true;
                break;
            }
        }
        if !had_separator || reason.trim().is_empty() {
            bad.push((
                c.start_line,
                format!(
                    "suppression for `{rule}` is missing its mandatory reason \
                     (write `// lint: allow({rule}) — <why this is sound>`)"
                ),
            ));
            continue;
        }
        ok.push(Suppression {
            rule,
            reason: reason.trim().to_string(),
            line: c.start_line,
        });
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_and_bodies_are_found() {
        let src = "fn a() { 1 } trait T { fn decl(&self); } impl T for U { fn decl(&self) { let x = || {}; } }";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<_> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "decl", "decl"]);
        assert!(f.functions[0].body.is_some());
        assert!(f.functions[1].body.is_none(), "trait decl has no body");
        let (lo, hi) = f.functions[2].body.unwrap();
        assert!(f.tokens[lo].is_punct('{') && f.tokens[hi].is_punct('}'));
        // The closure's braces must not have ended the body early.
        assert_eq!(
            f.tokens[hi + 1].text,
            "}",
            "impl block close follows fn close"
        );
    }

    #[test]
    fn fn_with_where_clause_and_generics_gets_its_body() {
        let src = "fn g<T: Clone>(x: [u8; 3]) -> Vec<T> where T: Default { body() }";
        let f = SourceFile::parse("x.rs", src);
        let (lo, _) = f.functions[0].body.unwrap();
        assert!(f.tokens[lo].is_punct('{'));
        assert!(f.tokens[lo + 1].is_ident("body"));
    }

    #[test]
    fn cfg_test_mod_extent_covers_its_lines() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_extents, [(2, 5)]);
        assert!(!f.in_test_extent(1));
        assert!(f.in_test_extent(4));
        assert!(!f.in_test_extent(6));
    }

    #[test]
    fn suppressions_parse_with_reason_and_flag_without() {
        let src = "\
let a = 1; // lint: allow(alloc-free-path) — cold error path, runs once\n\
let b = 2; // lint: allow(lock-discipline)\n\
let c = 3; // lint: allow(unsafe-audit) -- double dash reason\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, "alloc-free-path");
        assert_eq!(f.suppressions[0].reason, "cold error path, runs once");
        assert_eq!(f.suppressions[0].line, 1);
        assert_eq!(f.suppressions[1].rule, "unsafe-audit");
        assert_eq!(f.malformed_suppressions.len(), 1);
        assert_eq!(f.malformed_suppressions[0].0, 2);
    }

    #[test]
    fn safety_comment_window_is_three_lines() {
        let src = "// SAFETY: bounds checked above\n//\n//\nunsafe { x() }\n\n\n\nunsafe { y() }";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.has_safety_comment_near(4, 3));
        assert!(!f.has_safety_comment_near(8, 3));
    }

    #[test]
    fn multi_line_safety_block_counts_from_its_last_line() {
        // SAFETY: heads a 5-line contiguous comment block; the block *end*
        // is what must be within the window, not the SAFETY line itself.
        let src = "// SAFETY: unsafe solely because of target_feature —\n\
                   // the body is safe Rust recompiled under AVX2 codegen.\n\
                   // Sole precondition: the CPU supports AVX2, which the\n\
                   // caller checks via avx2_available() before dispatch.\n\
                   // No pointer arithmetic anywhere in the body.\n\
                   unsafe fn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.has_safety_comment_near(6, 3));
        // A gap in the run breaks the block.
        let gapped = "// SAFETY: stale, detached\n\n// unrelated\n// unrelated\n// unrelated\nunsafe fn f() {}\n";
        let g = SourceFile::parse("x.rs", gapped);
        assert!(!g.has_safety_comment_near(6, 3));
    }
}
