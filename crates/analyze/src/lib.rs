//! `centaur-analyze` — in-repo static analysis enforcing the workspace's
//! load-bearing invariants.
//!
//! The repo's three hardest-won invariants — zero-alloc steady-state
//! serving, bitwise-oracle unsafe SIMD kernels, and the lock/condvar
//! discipline the supervisor and EDF queue depend on — were previously
//! enforced only dynamically (counting allocator, property tests) on the
//! paths the tests happen to drive. This crate enforces them lexically
//! over **every** workspace `.rs` file, in CI, with `-D`-style strictness
//! (`--deny`). No registry access means no `syn`; the crate ships its own
//! small Rust lexer (raw strings, nested block comments, char literals)
//! and a lint framework with file:line diagnostics, mandatory-reason
//! inline suppressions, and a committed (empty) baseline.
//!
//! Run locally from the workspace root:
//!
//! ```text
//! cargo run -p centaur-analyze            # report
//! cargo run -p centaur-analyze -- --deny  # CI gate (exit 1 on findings)
//! cargo run -p centaur-analyze -- --inventory  # unsafe inventory table
//! ```

pub mod diagnostics;
pub mod lexer;
pub mod lints;
pub mod source;

use diagnostics::{apply_suppressions, Diagnostic};
use lints::unsafe_audit::UnsafeSite;
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Default baseline filename, resolved against the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.txt";

/// The result of analyzing a set of sources.
pub struct Analysis {
    /// Findings that survived inline suppressions, sorted by location.
    pub findings: Vec<Diagnostic>,
    /// Count of findings silenced by well-formed inline suppressions.
    pub suppressed: usize,
    /// Files scanned.
    pub files: usize,
    /// Every `unsafe` site in the scanned sources.
    pub inventory: Vec<UnsafeSite>,
}

/// Analyzes in-memory sources (used by the CLI after walking the
/// workspace, and by fixture tests directly). `readme` is the README.md
/// content the env-knob lint checks documentation against.
pub fn analyze_sources(sources: &[(String, String)], readme: &str) -> Analysis {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut inventory = Vec::new();
    let mut env = lints::env_registry::EnvRegistry::default();
    let mut bench = lints::bench_schema::BenchSchema::default();
    for file in &files {
        raw.extend(lints::alloc_free::check(file));
        raw.extend(lints::unsafe_audit::check(file, &mut inventory));
        raw.extend(lints::lock_discipline::check(file));
        env.check_file(file);
        bench.check_file(file);
    }
    raw.extend(env.finish(readme));
    raw.extend(bench.finish());

    // Suppressions are per-file; group findings by path, then apply.
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut grouped: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in raw {
        grouped.entry(d.path.clone()).or_default().push(d);
    }
    let mut findings = Vec::new();
    let mut suppressed = 0;
    for file in &files {
        let file_findings = grouped.remove(&file.path).unwrap_or_default();
        let result = apply_suppressions(file, file_findings);
        suppressed += result.suppressed;
        findings.extend(result.kept);
    }
    // Findings for paths we never parsed (cannot happen today, but keep
    // them rather than silently dropping).
    for (_, rest) in grouped {
        findings.extend(rest);
    }
    debug_assert!(by_path.len() == files.len(), "duplicate paths in input");
    findings.sort();
    findings.dedup();
    Analysis {
        findings,
        suppressed,
        files: files.len(),
        inventory,
    }
}

/// Walks the workspace rooted at `root` and analyzes every `.rs` file.
///
/// Skipped: `target/` (build output), `.git/`, and `tests/fixtures/`
/// directories (deliberately-bad lint fixtures). The vendored stub crates
/// under `vendor/` are workspace members and **are** scanned.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    Ok(analyze_sources(&sources, &readme))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sources_runs_all_lints_and_applies_suppressions() {
        let sources = vec![
            (
                "crates/x/src/lib.rs".to_string(),
                "\
fn gemm_into(out: &mut [f32]) {\n\
    // lint: allow(alloc-free-path) — fixture: pretend cold path\n\
    let v = Vec::new();\n\
}\n\
unsafe fn undocumented() {}\n"
                    .to_string(),
            ),
            (
                "crates/x/src/other.rs".to_string(),
                "fn plain() { let v = Vec::new(); }\n".to_string(),
            ),
        ];
        let analysis = analyze_sources(&sources, "");
        assert_eq!(analysis.files, 2);
        assert_eq!(analysis.suppressed, 1, "the allocation was suppressed");
        assert_eq!(analysis.findings.len(), 1, "{:?}", analysis.findings);
        assert_eq!(analysis.findings[0].rule, "unsafe-audit");
        assert_eq!(analysis.inventory.len(), 1);
        assert!(!analysis.inventory[0].documented);
    }

    #[test]
    fn clean_sources_produce_no_findings() {
        let sources = vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn forward_batch_into(out: &mut [f32]) { out[0] = 1.0; }\n".to_string(),
        )];
        let analysis = analyze_sources(&sources, "");
        assert!(analysis.findings.is_empty());
        assert_eq!(analysis.suppressed, 0);
    }
}
