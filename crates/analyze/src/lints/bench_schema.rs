//! `bench-schema`: the JSON column keys the bench crate writes into the
//! committed `BENCH_*.json` trajectory files must match a declared
//! schema, so those files stay append-compatible across PRs.
//!
//! The contract, enforced lexically over `crates/bench`:
//!
//! * every writer function named `bench_<x>_json` has a schema const
//!   `BENCH_<X>_COLUMNS: &[&str]` (declared in `crates/bench/src/schema.rs`);
//! * every `"key":` the writer emits is declared in that const (adding a
//!   column means declaring it — a conscious, reviewed schema change);
//! * every declared column is actually written (removing a column breaks
//!   append-compatibility and must retire the declaration too);
//! * every `BENCH_<x>.json` filename literal has a schema const at all —
//!   a new trajectory file cannot ship schemaless.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Declaration site of one `BENCH_<X>_COLUMNS` const: path, line, keys.
type ConstDecl = (String, u32, Vec<String>);
/// One `bench_<x>_json` writer: path, line, written (key, line) pairs.
type WriterSites = (String, u32, Vec<(String, u32)>);

/// Cross-file state over `crates/bench`.
#[derive(Debug, Default)]
pub struct BenchSchema {
    /// `BENCH_<X>_COLUMNS` → declaration.
    consts: BTreeMap<String, ConstDecl>,
    /// `bench_<x>_json` → writer sites.
    writers: BTreeMap<String, WriterSites>,
    /// `BENCH_<x>.json` filename literals: (stem, path, line).
    filenames: Vec<(String, String, u32)>,
}

/// Extracts `"key":` occurrences from one string-literal body (escapes
/// `\"` resolved first, so ordinary format strings and raw strings both
/// scan identically).
pub fn json_keys_in(literal: &str) -> Vec<String> {
    let mut unescaped = String::with_capacity(literal.len());
    let mut chars = literal.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(e) = chars.next() {
                unescaped.push(e);
            }
        } else {
            unescaped.push(c);
        }
    }
    let bytes: Vec<char> = unescaped.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            if j > start && j < bytes.len() && bytes[j] == '"' {
                let mut k = j + 1;
                while k < bytes.len() && bytes[k].is_whitespace() {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == ':' {
                    out.push(bytes[start..j].iter().collect::<String>());
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

impl BenchSchema {
    pub fn check_file(&mut self, file: &SourceFile) {
        if !file.path.contains("crates/bench/") {
            return;
        }
        let tokens = &file.tokens;
        // Schema consts.
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("const") {
                continue;
            }
            let Some(name) = tokens.get(i + 1).filter(|t| {
                t.kind == TokenKind::Ident
                    && t.text.starts_with("BENCH_")
                    && t.text.ends_with("_COLUMNS")
            }) else {
                continue;
            };
            let mut keys = Vec::new();
            for t in &tokens[i + 2..] {
                if t.is_punct(';') {
                    break;
                }
                if t.kind == TokenKind::Str {
                    keys.push(t.text.clone());
                }
            }
            self.consts
                .insert(name.text.clone(), (file.path.clone(), tokens[i].line, keys));
        }
        // Writer functions.
        for f in &file.functions {
            if !(f.name.starts_with("bench_") && f.name.ends_with("_json")) {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            let mut written = Vec::new();
            for t in &tokens[lo..=hi] {
                if t.kind == TokenKind::Str {
                    for key in json_keys_in(&t.text) {
                        written.push((key, t.line));
                    }
                }
            }
            self.writers
                .insert(f.name.clone(), (file.path.clone(), f.line, written));
        }
        // BENCH_<x>.json filename literals (anywhere in the crate).
        for t in tokens {
            if t.kind != TokenKind::Str {
                continue;
            }
            let mut rest = t.text.as_str();
            while let Some(pos) = rest.find("BENCH_") {
                let tail = &rest[pos + "BENCH_".len()..];
                if let Some(stem_len) = tail.find(".json") {
                    let stem = &tail[..stem_len];
                    if !stem.is_empty()
                        && stem.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        self.filenames
                            .push((stem.to_string(), file.path.clone(), t.line));
                    }
                }
                rest = &rest[pos + "BENCH_".len()..];
            }
        }
    }

    pub fn finish(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (fn_name, (path, line, written)) in &self.writers {
            let stem = fn_name
                .trim_start_matches("bench_")
                .trim_end_matches("_json");
            let const_name = format!("BENCH_{}_COLUMNS", stem.to_ascii_uppercase());
            let Some((const_path, const_line, declared)) = self.consts.get(&const_name) else {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: *line,
                    rule: "bench-schema",
                    message: format!(
                        "writer `{fn_name}` has no schema const `{const_name}` — \
                         declare the column set in crates/bench/src/schema.rs"
                    ),
                });
                continue;
            };
            for (key, key_line) in written {
                if !declared.contains(key) {
                    out.push(Diagnostic {
                        path: path.clone(),
                        line: *key_line,
                        rule: "bench-schema",
                        message: format!(
                            "`{fn_name}` writes undeclared column `\"{key}\"` — \
                             add it to `{const_name}` (new columns are a schema \
                             change; keep trajectory files append-compatible)"
                        ),
                    });
                }
            }
            for key in declared {
                if !written.iter().any(|(k, _)| k == key) {
                    out.push(Diagnostic {
                        path: const_path.clone(),
                        line: *const_line,
                        rule: "bench-schema",
                        message: format!(
                            "declared column `\"{key}\"` is never written by \
                             `{fn_name}` — dropping a column breaks \
                             append-compatibility; retire it from \
                             `{const_name}` deliberately"
                        ),
                    });
                }
            }
        }
        for (stem, path, line) in &self.filenames {
            let const_name = format!("BENCH_{}_COLUMNS", stem.to_ascii_uppercase());
            if !self.consts.contains_key(&const_name) {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: *line,
                    rule: "bench-schema",
                    message: format!(
                        "`BENCH_{stem}.json` is referenced but no `{const_name}` \
                         schema exists — every trajectory file needs a declared \
                         column set"
                    ),
                });
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<String> {
        let mut schema = BenchSchema::default();
        for (path, src) in files {
            schema.check_file(&SourceFile::parse(path, src));
        }
        schema.finish().into_iter().map(|d| d.to_string()).collect()
    }

    const SCHEMA: (&str, &str) = (
        "crates/bench/src/schema.rs",
        r#"pub const BENCH_DEMO_COLUMNS: &[&str] = &["unit", "points", "qps"];"#,
    );

    #[test]
    fn key_extraction_reads_escaped_and_raw_forms() {
        assert_eq!(
            json_keys_in(r#"{{\"unit\": \"s\", \"qps\": {:.1}}}"#),
            ["unit", "qps"]
        );
        assert_eq!(
            json_keys_in(r#"{"plain": 1, "with_ws"  : 2}"#),
            ["plain", "with_ws"]
        );
        assert!(json_keys_in("no keys \"here\" at all").is_empty());
    }

    #[test]
    fn matching_writer_and_schema_pass() {
        let out = run(&[
            SCHEMA,
            (
                "crates/bench/src/runner.rs",
                r#"pub fn bench_demo_json() -> String { format!("{{\"unit\": \"s\", \"points\": [{{\"qps\": {:.1}}}]}}", 1.0) }"#,
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn undeclared_written_column_is_flagged() {
        let out = run(&[
            SCHEMA,
            (
                "crates/bench/src/runner.rs",
                r#"pub fn bench_demo_json() -> String { format!("{{\"unit\": 1, \"points\": [], \"qps\": 2, \"surprise\": 3}}") }"#,
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("undeclared column `\"surprise\"`"));
    }

    #[test]
    fn declared_but_unwritten_column_is_flagged_at_the_const() {
        let out = run(&[
            SCHEMA,
            (
                "crates/bench/src/runner.rs",
                r#"pub fn bench_demo_json() -> String { format!("{{\"unit\": 1, \"points\": []}}") }"#,
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("crates/bench/src/schema.rs:1"));
        assert!(out[0].contains("`\"qps\"` is never written"));
    }

    #[test]
    fn writer_without_schema_and_schemaless_filename_are_flagged() {
        let out = run(&[(
            "crates/bench/src/bin/bench_new.rs",
            r#"pub fn bench_new_json() -> String { String::new() }
               fn main() { std::fs::write("BENCH_new.json", bench_new_json()).unwrap(); }"#,
        )]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("has no schema const `BENCH_NEW_COLUMNS`"));
        assert!(out[1].contains("no `BENCH_NEW_COLUMNS` schema exists"));
    }

    #[test]
    fn files_outside_crates_bench_are_ignored() {
        let out = run(&[(
            "crates/serve/src/lib.rs",
            r#"pub fn bench_rogue_json() -> String { format!("{{\"x\": 1}}") }"#,
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
