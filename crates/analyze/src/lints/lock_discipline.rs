//! `lock-discipline`: the lexical rules the supervisor and the EDF
//! arrival queue depend on to stay deadlock-free.
//!
//! Three checks, all per-function and purely lexical:
//!
//! 1. **No nested `.lock()`** — acquiring any lock while a bound
//!    `MutexGuard` is live in the same function (including two `.lock()`
//!    calls in one statement) is the classic two-mutex deadlock shape.
//! 2. **`Condvar::wait` inside a retry loop** — a bare `wait` outside a
//!    `while`/`loop` is a missed-wakeup / spurious-wakeup bug.
//! 3. **No foreign guard across a `wait`** — holding a *second* guard
//!    while parking on a condvar blocks every other thread that needs it.
//!
//! A *bound guard* is recognised lexically: a `let` whose initializer is a
//! `.lock()` call followed only by `.expect(..)`/`.unwrap()` adapters up
//! to the statement end. A `.lock()` whose result keeps being adapted
//! (`.lock().unwrap().take()`) is a temporary — the guard dies at the end
//! of the statement — and registers no binding.

use super::{matches_seq, Pat};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::HashSet;

#[derive(Debug)]
struct Guard {
    name: String,
    /// Block-stack height the guard lives at; it dies when the stack
    /// shrinks below this.
    depth: usize,
    line: u32,
}

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if file.is_test_path() {
        return out;
    }
    for f in &file.functions {
        if file.in_test_extent(f.line) {
            continue;
        }
        if let Some((lo, hi)) = f.body {
            check_body(file, &f.name, lo, hi, &mut out);
        }
    }
    out
}

fn check_body(file: &SourceFile, fn_name: &str, lo: usize, hi: usize, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let mut stack: Vec<bool> = Vec::new(); // is_loop per open block
    let mut pending_loop: Option<i32> = None;
    let mut paren = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut handled_locks: HashSet<usize> = HashSet::new();
    // (terminator token index, guard name, guard line)
    let mut activations: Vec<(usize, String, u32)> = Vec::new();

    let mut i = lo;
    while i <= hi {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" => {
                    let is_loop = pending_loop == Some(paren);
                    if is_loop {
                        pending_loop = None;
                    }
                    stack.push(is_loop);
                }
                "}" => {
                    stack.pop();
                    guards.retain(|g| g.depth <= stack.len());
                }
                _ => {}
            }
        }
        // Guard activations fire after the stack op on their terminator,
        // so a condition-let guard is scoped to the block it opens.
        if let Some(pos) = activations.iter().position(|(at, _, _)| *at == i) {
            let (_, name, line) = activations.swap_remove(pos);
            guards.push(Guard {
                name,
                depth: stack.len(),
                line,
            });
        }
        if t.is_ident("while") || t.is_ident("loop") || t.is_ident("for") {
            pending_loop = Some(paren);
        } else if t.is_ident("let") {
            scan_let(
                file,
                fn_name,
                i,
                hi,
                &guards,
                &mut handled_locks,
                &mut activations,
                out,
            );
        } else if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                guards.retain(|g| g.name != name.text);
            }
        } else if is_lock_call(tokens, i) && !handled_locks.contains(&(i + 1)) {
            if !guards.is_empty() {
                out.push(nested_lock(file, fn_name, tokens[i].line, &guards));
            }
        } else if let Some(wait_kind) = wait_call(tokens, i) {
            let line = tokens[i].line;
            if !stack.iter().any(|&l| l) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line,
                    rule: "lock-discipline",
                    message: format!(
                        "`{wait_kind}` in `{fn_name}` outside a `while`/`loop` — \
                         condvar waits must re-check their predicate in a retry \
                         loop (spurious wakeups, missed-state races)"
                    ),
                });
            }
            // First identifier inside the call is the waited guard.
            let arg = tokens[i + 2..]
                .iter()
                .take_while(|t| !t.is_punct(')'))
                .find(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let foreign: Vec<&Guard> = guards.iter().filter(|g| g.name != arg).collect();
            if !foreign.is_empty() {
                let names: Vec<String> = foreign
                    .iter()
                    .map(|g| format!("`{}` (line {})", g.name, g.line))
                    .collect();
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line,
                    rule: "lock-discipline",
                    message: format!(
                        "`{wait_kind}` in `{fn_name}` parks while guard {} is \
                         still held — every thread needing that lock blocks \
                         until the wakeup",
                        names.join(", ")
                    ),
                });
            }
        }
        i += 1;
    }
}

/// Is token `i` the `.` of a `.lock(` call?
fn is_lock_call(tokens: &[Token], i: usize) -> bool {
    matches_seq(tokens, i, &[Pat::P('.'), Pat::Id("lock"), Pat::P('(')])
}

/// Is token `i` the `.` of a `.wait(`/`.wait_timeout(` call? Returns the
/// method name.
fn wait_call(tokens: &[Token], i: usize) -> Option<&'static str> {
    ["wait_timeout", "wait"]
        .into_iter()
        .find(|name| matches_seq(tokens, i, &[Pat::P('.'), Pat::Id(name), Pat::P('(')]))
}

fn nested_lock(file: &SourceFile, fn_name: &str, line: u32, guards: &[Guard]) -> Diagnostic {
    let held: Vec<String> = guards
        .iter()
        .map(|g| format!("`{}` (line {})", g.name, g.line))
        .collect();
    Diagnostic {
        path: file.path.clone(),
        line,
        rule: "lock-discipline",
        message: format!(
            "`.lock()` in `{fn_name}` while guard {} is already held — \
             nested acquisition is the two-mutex deadlock shape; drop the \
             guard first or merge the critical sections",
            held.join(", ")
        ),
    }
}

/// Scans one `let` statement starting at the `let` token: classifies its
/// `.lock()` calls (emitting nested-lock findings now), marks them
/// handled for the main walk, and registers a guard activation when the
/// statement binds a `MutexGuard`.
#[allow(clippy::too_many_arguments)]
fn scan_let(
    file: &SourceFile,
    fn_name: &str,
    let_idx: usize,
    body_hi: usize,
    guards: &[Guard],
    handled_locks: &mut HashSet<usize>,
    activations: &mut Vec<(usize, String, u32)>,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &file.tokens;
    // `if let` / `while let` conditions terminate at `{` (Rust forbids
    // bare struct literals there); a plain `let` terminates at `;`.
    let is_condition = let_idx > 0
        && tokens[let_idx - 1].kind == TokenKind::Ident
        && matches!(tokens[let_idx - 1].text.as_str(), "if" | "while");

    // Binding names: identifiers before `=` (or a `:` type annotation at
    // pattern depth 0), minus pattern keywords and enum constructors.
    let mut names: Vec<String> = Vec::new();
    let mut j = let_idx + 1;
    let mut depth = 0i32;
    while j <= body_hi {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "=" => break,
                ":" if depth == 0 => break,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref") {
            // Skip enum-constructor names (`Ok(g)`, `Some(x)`): an ident
            // immediately followed by `(` names the variant, not a binding.
            if !tokens.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                names.push(t.text.clone());
            }
        }
        j += 1;
    }

    // Statement extent: from `let` to the terminator, skipping matched
    // brace groups (struct literals, closure bodies) inside it.
    let mut k = let_idx + 1;
    let mut rel_paren = 0i32;
    let mut terminator = None;
    while k <= body_hi {
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => rel_paren += 1,
                ")" | "]" => rel_paren -= 1,
                "{" if is_condition && rel_paren == 0 => {
                    terminator = Some(k);
                    break;
                }
                "{" => {
                    k = crate::source::match_brace(tokens, k);
                }
                ";" if rel_paren == 0 => {
                    terminator = Some(k);
                    break;
                }
                _ => {}
            }
        }
        k += 1;
    }
    let Some(term) = terminator else { return };

    // `.lock()` calls inside this statement.
    let lock_dots: Vec<usize> = (let_idx..term)
        .filter(|&i| is_lock_call(tokens, i))
        .collect();
    for &dot in &lock_dots {
        handled_locks.insert(dot + 1);
    }
    if lock_dots.is_empty() {
        return;
    }
    for (n, &dot) in lock_dots.iter().enumerate() {
        if !guards.is_empty() {
            out.push(nested_lock(file, fn_name, tokens[dot].line, guards));
        } else if n > 0 {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: tokens[dot].line,
                rule: "lock-discipline",
                message: format!(
                    "second `.lock()` in one statement in `{fn_name}` — both \
                     guards are live until the statement ends (two-mutex \
                     deadlock shape)"
                ),
            });
        }
    }

    // Does the statement bind a guard? Follow the last `.lock(...)`
    // through `.expect(..)`/`.unwrap()` adapters; a guard is bound only
    // when that chain runs straight into the terminator.
    let last_dot = *lock_dots.last().expect("non-empty");
    let mut k = match_paren(tokens, last_dot + 2); // index of `)` closing lock(
    loop {
        let dot_adapter = tokens.get(k + 1).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(k + 2)
                .is_some_and(|t| t.is_ident("expect") || t.is_ident("unwrap"))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct('('));
        if dot_adapter {
            k = match_paren(tokens, k + 3);
        } else {
            break;
        }
    }
    let binds_guard = k + 1 == term;
    if binds_guard {
        if let Some(name) = names.first().filter(|n| *n != "_") {
            activations.push((term, name.clone(), tokens[let_idx].line));
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        check(&f).into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn nested_lock_under_live_guard_is_flagged() {
        let src = "\
fn bad(&self) {\n\
    let mut a = self.m1.lock().expect(\"m1\");\n\
    let b = self.m2.lock().expect(\"m2\");\n\
    a.push(*b);\n\
}\n";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].0, 3);
        assert!(found[0].1.contains("`a` (line 2)"));
    }

    #[test]
    fn sequential_temporaries_are_fine() {
        // Each `.lock()` is a temporary (the chain continues past
        // unwrap/expect or the value is extracted) — no guard outlives
        // its own statement.
        let src = "\
fn ok(&self) -> usize {\n\
    *self.count.lock().expect(\"poisoned\") += 1;\n\
    let n = self.count.lock().expect(\"poisoned\").len();\n\
    let t = self.slot.lock().unwrap().take();\n\
    n\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn guard_scope_ends_with_its_block() {
        let src = "\
fn ok(&self) {\n\
    {\n\
        let g = self.m1.lock().unwrap();\n\
        g.touch();\n\
    }\n\
    let h = self.m2.lock().unwrap();\n\
    h.touch();\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "\
fn ok(&self) {\n\
    let g = self.m1.lock().unwrap();\n\
    drop(g);\n\
    let h = self.m2.lock().unwrap();\n\
    h.touch();\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn two_locks_in_one_statement_are_flagged() {
        let src = "fn bad(&self) { let t = (self.a.lock().unwrap().v, self.b.lock().unwrap().v); }";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("second `.lock()` in one statement"));
    }

    #[test]
    fn wait_outside_loop_is_flagged_inside_is_not() {
        let bad = "\
fn bad(&self) {\n\
    let mut state = self.m.lock().unwrap();\n\
    state = self.cv.wait(state).unwrap();\n\
}\n";
        let found = run(bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("outside a `while`/`loop`"));

        let good = "\
fn good(&self) {\n\
    let mut state = self.m.lock().unwrap();\n\
    while !state.ready {\n\
        state = self.cv.wait(state).unwrap();\n\
    }\n\
    loop {\n\
        let (next, timed) = self.cv.wait_timeout(state, dur).unwrap();\n\
        state = next;\n\
        if timed.timed_out() { break; }\n\
    }\n\
}\n";
        assert!(run(good).is_empty(), "{:?}", run(good));
    }

    #[test]
    fn closure_brace_in_loop_condition_does_not_eat_the_loop_body() {
        let src = "\
fn good(&self) {\n\
    let mut state = self.m.lock().unwrap();\n\
    while state.items.iter().any(|x| { x.live }) {\n\
        state = self.cv.wait(state).unwrap();\n\
    }\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn foreign_guard_across_wait_is_flagged() {
        let src = "\
fn bad(&self) {\n\
    let other = self.stats.lock().unwrap();\n\
    let mut state = self.m.lock().unwrap();\n\
    while !state.ready {\n\
        state = self.cv.wait(state).unwrap();\n\
    }\n\
    other.touch();\n\
}\n";
        let found = run(src);
        // line 3: nested lock under `other`; line 5: `other` held across wait.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].1.contains("nested acquisition"));
        assert!(found[1].1.contains("`other` (line 2)"));
        assert!(found[1].1.contains("parks while guard"));
    }

    #[test]
    fn if_let_condition_guard_is_scoped_to_its_block() {
        let src = "\
fn ok(&self) {\n\
    if let Ok(g) = self.m1.lock() {\n\
        g.touch();\n\
    }\n\
    let h = self.m2.lock().unwrap();\n\
    h.touch();\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t(&self) {\n\
        let a = self.m1.lock().unwrap();\n\
        let b = self.m2.lock().unwrap();\n\
    }\n\
}\n";
        assert!(run(src).is_empty());
    }
}
