//! The lint catalog. Every lint is a pure function over [`SourceFile`]s
//! (plus a workspace context for the cross-file rules), so fixture tests
//! can drive each one on in-memory sources with no filesystem.
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `alloc-free-path`    | zero-alloc steady-state serving: `*_into`/`*_ws` hot-path functions must not lexically allocate |
//! | `unsafe-audit`       | every `unsafe` site carries a `// SAFETY:` comment within 3 lines |
//! | `lock-discipline`    | no nested `.lock()` under a live guard; `Condvar::wait` only inside a retry loop; no foreign guard held across a wait |
//! | `env-knob-registry`  | every `CENTAUR_*` knob is read via the warn-once parsers and documented in README |
//! | `bench-schema`       | JSON keys written into `BENCH_*.json` match the declared schema consts |
//! | `suppression`        | (framework) suppressions are well-formed, reasoned, and actually silence something |

pub mod alloc_free;
pub mod bench_schema;
pub mod env_registry;
pub mod lock_discipline;
pub mod unsafe_audit;

use crate::lexer::{Token, TokenKind};

/// All rule names, for `--help` and docs.
pub const RULES: &[&str] = &[
    "alloc-free-path",
    "unsafe-audit",
    "lock-discipline",
    "env-knob-registry",
    "bench-schema",
    "suppression",
];

/// One element of a token pattern.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Pat {
    /// An identifier with this exact text.
    Id(&'static str),
    /// A punctuation character.
    P(char),
}

/// Does the token stream match `pattern` starting at `i`?
pub(crate) fn matches_seq(tokens: &[Token], i: usize, pattern: &[Pat]) -> bool {
    pattern.iter().enumerate().all(|(k, p)| {
        tokens.get(i + k).is_some_and(|t| match p {
            Pat::Id(text) => t.is_ident(text),
            Pat::P(c) => t.is_punct(*c),
        })
    })
}

/// The next identifier token at or after `i`, if any.
pub(crate) fn next_ident(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[i..].iter().find(|t| t.kind == TokenKind::Ident)
}
