//! `unsafe-audit`: every `unsafe` site carries a `// SAFETY:` comment
//! within the 3 preceding lines (or on its own line), stating the exact
//! preconditions — alignment, bounds, cpuid — that make it sound.
//!
//! Also builds the workspace **unsafe inventory** (`--inventory`): one row
//! per site with its kind, enclosing item, and documentation status, so a
//! PR adding a fourth gather kernel shows up as a diff in reviewable
//! state, not as an anonymous new `unsafe`.

use super::next_ident;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// How far above the `unsafe` token a `// SAFETY:` comment may sit.
pub const SAFETY_WINDOW_LINES: u32 = 3;

/// One `unsafe` occurrence in the workspace.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub path: String,
    pub line: u32,
    /// `unsafe fn` / `unsafe block` / `unsafe impl` / `unsafe trait`.
    pub kind: String,
    /// The named item this site belongs to (the fn itself for `unsafe
    /// fn`, the enclosing fn for blocks), or `?` at module scope.
    pub context: String,
    pub documented: bool,
}

pub fn check(file: &SourceFile, inventory: &mut Vec<UnsafeSite>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let next = next_ident(&file.tokens, i + 1).map(|t| t.text.as_str());
        let (kind, context) = match next {
            Some("fn") => (
                "unsafe fn",
                next_ident(&file.tokens, i + 2)
                    .map(|t| t.text.clone())
                    .unwrap_or_else(|| "?".to_string()),
            ),
            Some("impl") => ("unsafe impl", enclosing(file, i)),
            Some("trait") => ("unsafe trait", enclosing(file, i)),
            _ => ("unsafe block", enclosing(file, i)),
        };
        let documented = file.has_safety_comment_near(t.line, SAFETY_WINDOW_LINES);
        inventory.push(UnsafeSite {
            path: file.path.clone(),
            line: t.line,
            kind: kind.to_string(),
            context: context.clone(),
            documented,
        });
        if !documented {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: t.line,
                rule: "unsafe-audit",
                message: format!(
                    "{kind} in `{context}` has no `// SAFETY:` comment within \
                     {SAFETY_WINDOW_LINES} lines — state the exact \
                     alignment/bounds/cpuid preconditions that make it sound"
                ),
            });
        }
    }
    out
}

fn enclosing(file: &SourceFile, idx: usize) -> String {
    file.enclosing_fn(idx)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| "?".to_string())
}

/// Renders the inventory as an aligned table for `--inventory`.
pub fn render_inventory(sites: &[UnsafeSite]) -> String {
    let documented = sites.iter().filter(|s| s.documented).count();
    let mut out = format!(
        "unsafe inventory: {} sites, {} documented\n",
        sites.len(),
        documented
    );
    for s in sites {
        out.push_str(&format!(
            "  {}:{} {} in `{}` [{}]\n",
            s.path,
            s.line,
            s.kind,
            s.context,
            if s.documented {
                "SAFETY ok"
            } else {
                "UNDOCUMENTED"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_and_undocumented_sites_split_correctly() {
        let src = "\
fn caller() {\n\
    // SAFETY: cpuid-guarded above, slices bounds-checked by the caller\n\
    unsafe { fast() }\n\
}\n\
fn bare() {\n\
    unsafe { fast() }\n\
}\n\
unsafe fn fast() {}\n";
        let f = SourceFile::parse("crates/x/src/k.rs", src);
        let mut inv = Vec::new();
        let diags = check(&f, &mut inv);
        assert_eq!(inv.len(), 3);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].line, 6);
        assert!(diags[0].message.contains("unsafe block in `bare`"));
        assert_eq!(diags[1].line, 8);
        assert!(diags[1].message.contains("unsafe fn in `fast`"));
        assert!(inv[0].documented && !inv[1].documented && !inv[2].documented);
    }

    #[test]
    fn safety_window_is_exactly_three_lines() {
        let src = "// SAFETY: four lines up is too far\n\n\n\nunsafe fn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let mut inv = Vec::new();
        assert_eq!(check(&f, &mut inv).len(), 1, "line 1 comment, site line 5");
        let src = "// SAFETY: three lines up is in the window\n\n\nunsafe fn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        inv.clear();
        assert!(check(&f, &mut inv).is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_a_site() {
        let src = "fn f() { let s = \"unsafe\"; } // unsafe in prose\n";
        let f = SourceFile::parse("x.rs", src);
        let mut inv = Vec::new();
        assert!(check(&f, &mut inv).is_empty());
        assert!(inv.is_empty());
    }

    #[test]
    fn inventory_renders_counts() {
        let sites = vec![UnsafeSite {
            path: "a.rs".into(),
            line: 3,
            kind: "unsafe block".into(),
            context: "f".into(),
            documented: true,
        }];
        let table = render_inventory(&sites);
        assert!(table.contains("1 sites, 1 documented"));
        assert!(table.contains("a.rs:3 unsafe block in `f` [SAFETY ok]"));
    }
}
