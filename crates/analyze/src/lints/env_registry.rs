//! `env-knob-registry`: every `CENTAUR_*` environment knob is read
//! through the warn-once parsers and documented in the README.
//!
//! The repo's contract (established in PR 4 and held since) is that a
//! misspelled knob value *warns once* naming the accepted set instead of
//! silently defaulting. That only works if every `std::env::var` read of
//! a `CENTAUR_*` knob lives in one of the two registry modules that
//! implement the contract — and a knob nobody can find in the README may
//! as well not exist. Three checks:
//!
//! 1. every knob literal appearing in production code is documented in
//!    `README.md`;
//! 2. every `env::var("CENTAUR_…")` read site lives in a registry module
//!    ([`REGISTRY_MODULES`]);
//! 3. every read site's enclosing function calls a `parse_*` helper (the
//!    unit-testable half of the warn-once contract).
//!
//! Knob literals that appear **only** in test code (e.g. a `set_var` in a
//! test) are exempt from the README requirement.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// The modules allowed to read `CENTAUR_*` knobs from the environment —
/// both implement the warn-once `OnceLock` + `parse_*` contract.
pub const REGISTRY_MODULES: &[&str] = &["crates/serve/src/env.rs", "crates/dlrm/src/kernel.rs"];

/// Cross-file state accumulated by [`check_file`], resolved by [`finish`].
#[derive(Debug, Default)]
pub struct EnvRegistry {
    /// knob → first (path, line) sighting in non-test code.
    production_knobs: BTreeMap<String, (String, u32)>,
    /// `env::var("CENTAUR_…")` read sites: (knob, path, line, enclosing
    /// fn calls a `parse_*` helper).
    read_sites: Vec<(String, String, u32, bool)>,
}

/// Extracts `CENTAUR_[A-Z0-9_]+` knob names from a string literal.
pub fn knobs_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("CENTAUR_") {
        let tail = &rest[pos + "CENTAUR_".len()..];
        let len = tail
            .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(tail.len());
        if len > 0 {
            let knob = format!("CENTAUR_{}", &tail[..len])
                .trim_end_matches('_')
                .to_string();
            out.push(knob);
        }
        rest = &rest[pos + "CENTAUR_".len()..];
    }
    out
}

impl EnvRegistry {
    pub fn check_file(&mut self, file: &SourceFile) {
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokenKind::Str {
                continue;
            }
            let in_test = file.is_test_path() || file.in_test_extent(t.line);
            for knob in knobs_in(&t.text) {
                if !in_test {
                    self.production_knobs
                        .entry(knob.clone())
                        .or_insert_with(|| (file.path.clone(), t.line));
                }
                // An env read: `var("CENTAUR_…")`. `set_var`/`remove_var`
                // are distinct identifiers and do not match.
                let is_read = i >= 2
                    && file.tokens[i - 1].is_punct('(')
                    && file.tokens[i - 2].is_ident("var");
                if is_read {
                    let has_parser = file
                        .enclosing_fn(i)
                        .and_then(|f| f.body)
                        .map(|(lo, hi)| {
                            file.tokens[lo..=hi]
                                .iter()
                                .any(|t| t.kind == TokenKind::Ident && t.text.starts_with("parse_"))
                        })
                        .unwrap_or(false);
                    self.read_sites
                        .push((knob, file.path.clone(), t.line, has_parser));
                }
            }
        }
    }

    pub fn finish(&self, readme: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (knob, (path, line)) in &self.production_knobs {
            if !readme.contains(knob.as_str()) {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: *line,
                    rule: "env-knob-registry",
                    message: format!(
                        "`{knob}` is not documented in README.md — every knob \
                         must appear in the README's environment-knob table"
                    ),
                });
            }
        }
        for (knob, path, line, has_parser) in &self.read_sites {
            let in_registry = REGISTRY_MODULES.iter().any(|m| path.ends_with(m));
            if !in_registry {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: *line,
                    rule: "env-knob-registry",
                    message: format!(
                        "`{knob}` is read from the environment outside the \
                         registry modules ({}) — route it through a warn-once \
                         accessor there instead",
                        REGISTRY_MODULES.join(", ")
                    ),
                });
            } else if !has_parser {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: *line,
                    rule: "env-knob-registry",
                    message: format!(
                        "`{knob}` is read without a `parse_*` helper in the \
                         enclosing function — the warn-once contract needs a \
                         pure, unit-testable parser"
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const README: &str = "Knobs: CENTAUR_SERVE_SLO_MS and CENTAUR_NUM_THREADS.";

    fn run(files: &[(&str, &str)]) -> Vec<String> {
        let mut reg = EnvRegistry::default();
        for (path, src) in files {
            reg.check_file(&SourceFile::parse(path, src));
        }
        reg.finish(README)
            .into_iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn knob_extraction_handles_prefixes_and_prose() {
        assert_eq!(knobs_in("CENTAUR_SERVE_SLO_MS"), ["CENTAUR_SERVE_SLO_MS"]);
        assert_eq!(
            knobs_in("set CENTAUR_A=1 and CENTAUR_B=2"),
            ["CENTAUR_A", "CENTAUR_B"]
        );
        assert!(knobs_in("the CENTAUR_ prefix itself").is_empty());
        assert!(knobs_in("CENTAUR_* wildcard prose").is_empty());
    }

    #[test]
    fn undocumented_production_knob_is_flagged() {
        let out = run(&[(
            "crates/serve/src/env.rs",
            r#"pub fn f() { let _ = parse_x("CENTAUR_SECRET_KNOB"); }"#,
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("CENTAUR_SECRET_KNOB"));
        assert!(out[0].contains("not documented"));
    }

    #[test]
    fn test_only_knobs_are_exempt_from_readme() {
        let out = run(&[(
            "crates/x/tests/override.rs",
            r#"fn t() { std::env::set_var("CENTAUR_TEST_ONLY", "1"); }"#,
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn read_outside_registry_module_is_flagged() {
        let out = run(&[(
            "crates/serve/src/harness.rs",
            r#"fn f() { let v = std::env::var("CENTAUR_SERVE_SLO_MS"); }"#,
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("outside the registry modules"));
    }

    #[test]
    fn registry_read_with_parser_passes_without_parser_fails() {
        let good = run(&[(
            "crates/serve/src/env.rs",
            r#"pub fn slo() -> f64 { match std::env::var("CENTAUR_SERVE_SLO_MS") { Ok(v) => parse_serve_slo_ms(&v).unwrap_or(5.0), Err(_) => 5.0 } }"#,
        )]);
        assert!(good.is_empty(), "{good:?}");
        let bad = run(&[(
            "crates/serve/src/env.rs",
            r#"pub fn slo() -> f64 { std::env::var("CENTAUR_SERVE_SLO_MS").unwrap().parse().unwrap() }"#,
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("without a `parse_*` helper"));
    }
}
