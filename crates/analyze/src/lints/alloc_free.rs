//! `alloc-free-path`: hot-path functions must not lexically allocate.
//!
//! The repo's zero-alloc steady-state invariant is enforced dynamically by
//! the counting allocator in `tests/zero_alloc.rs` — but only on the paths
//! that test happens to drive. This lint closes the gap lexically: any
//! function following the hot-path naming conventions (`*_into`, `*_ws`,
//! which includes `*_rows_into`) must not contain the well-known
//! allocating constructs. Cold setup/error paths inside such functions
//! that genuinely must allocate get an inline suppression with a reason.

use super::{matches_seq, Pat};
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// The banned constructs, as token patterns with a display name.
const BANNED: &[(&str, &[Pat])] = &[
    (
        "Vec::new",
        &[Pat::Id("Vec"), Pat::P(':'), Pat::P(':'), Pat::Id("new")],
    ),
    ("vec![", &[Pat::Id("vec"), Pat::P('!')]),
    (".to_vec()", &[Pat::P('.'), Pat::Id("to_vec")]),
    (".collect()", &[Pat::P('.'), Pat::Id("collect")]),
    ("format!", &[Pat::Id("format"), Pat::P('!')]),
    (
        "Box::new",
        &[Pat::Id("Box"), Pat::P(':'), Pat::P(':'), Pat::Id("new")],
    ),
    (
        "String::from",
        &[Pat::Id("String"), Pat::P(':'), Pat::P(':'), Pat::Id("from")],
    ),
];

/// Does this function name follow the hot-path conventions?
pub fn is_hot_path_name(name: &str) -> bool {
    name.ends_with("_into") || name.ends_with("_ws")
}

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if file.is_test_path() {
        return out;
    }
    for f in &file.functions {
        if !is_hot_path_name(&f.name) || file.in_test_extent(f.line) {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        for i in lo + 1..hi {
            for (name, pattern) in BANNED {
                if matches_seq(&file.tokens, i, pattern) {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: file.tokens[i].line,
                        rule: "alloc-free-path",
                        message: format!(
                            "hot-path fn `{}` contains `{}` — `*_into`/`*_ws` \
                             functions serve the zero-alloc steady state; move \
                             the allocation to construction/workspace setup or \
                             suppress with a reason",
                            f.name, name
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_for(src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        check(&f).into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn allocating_hot_path_fn_is_flagged_at_each_site() {
        let src = "\
fn reduce_rows_into(out: &mut [f32]) {\n\
    let v = Vec::new();\n\
    let w = vec![0.0; 4];\n\
}\n\
fn setup() { let v = Vec::new(); }\n";
        let found = lines_for(src);
        assert_eq!(found.len(), 2, "setup() is not a hot-path name: {found:?}");
        assert_eq!(found[0].0, 2);
        assert!(found[0].1.contains("Vec::new"));
        assert_eq!(found[1].0, 3);
        assert!(found[1].1.contains("vec!["));
    }

    #[test]
    fn every_banned_construct_is_caught() {
        for (snippet, label) in [
            ("let v = Vec::new();", "Vec::new"),
            ("let v = vec![1];", "vec!["),
            ("let v = s.to_vec();", ".to_vec()"),
            ("let v = it.collect::<Vec<_>>();", ".collect()"),
            ("let s = format!(\"{x}\");", "format!"),
            ("let b = Box::new(1);", "Box::new"),
            ("let s = String::from(\"x\");", "String::from"),
        ] {
            let src = format!("fn forward_ws(x: u8) {{ {snippet} }}");
            let found = lines_for(&src);
            assert_eq!(found.len(), 1, "{label} missed in {snippet}");
            assert!(
                found[0].1.contains(label),
                "{label} not named: {}",
                found[0].1
            );
        }
    }

    #[test]
    fn allocations_in_strings_comments_and_cold_fns_pass() {
        let src = "\
fn gemm_into(out: &mut [f32]) {\n\
    // Vec::new() in a comment is fine\n\
    let s = \"vec![not code] format!\";\n\
    out[0] = 1.0;\n\
}\n";
        assert!(lines_for(src).is_empty());
    }

    #[test]
    fn test_mods_and_test_paths_are_exempt() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn helper_into(x: u8) { let v = Vec::new(); }\n\
}\n";
        assert!(lines_for(src).is_empty());
        let f = SourceFile::parse(
            "crates/x/tests/it.rs",
            "fn a_into() { let v = Vec::new(); }",
        );
        assert!(check(&f).is_empty());
    }
}
