//! `centaur-analyze` CLI: lint the workspace, honour the committed
//! baseline, and (with `--deny`) gate CI like `clippy -D warnings` does.

use centaur_analyze::diagnostics::Baseline;
use centaur_analyze::lints::unsafe_audit::render_inventory;
use centaur_analyze::{analyze_workspace, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: centaur-analyze [OPTIONS] [ROOT]

Lexical lints over every workspace .rs file (ROOT defaults to the current
directory, which must be the workspace root).

options:
  --deny             exit 1 on any non-baselined finding or stale baseline
                     entry (the CI mode)
  --inventory        print the unsafe-site inventory table
  --write-baseline   rewrite the baseline file from the current findings
  --baseline <path>  baseline file (default: <ROOT>/analyze-baseline.txt)
  -h, --help         this text

rules: alloc-free-path, unsafe-audit, lock-discipline, env-knob-registry,
bench-schema, suppression. Suppress inline with
`// lint: allow(<rule>) — <reason>` (the reason is mandatory).";

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    deny: bool,
    inventory: bool,
    write_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        deny: false,
        inventory: false,
        write_baseline: false,
    };
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => opts.deny = true,
            "--inventory" => opts.inventory = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => {
                i += 1;
                let path = args.get(i).ok_or("--baseline needs a path")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            root => positional.push(root.to_string()),
        }
        i += 1;
    }
    match positional.len() {
        0 => {}
        1 => opts.root = PathBuf::from(&positional[0]),
        _ => return Err("at most one ROOT argument".to_string()),
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("centaur-analyze: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "centaur-analyze: {} does not look like the workspace root (no Cargo.toml)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let analysis = match analyze_workspace(&opts.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("centaur-analyze: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(BASELINE_FILE));
    if opts.write_baseline {
        let content = Baseline::render(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, content) {
            eprintln!(
                "centaur-analyze: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "centaur-analyze: wrote {} finding(s) to {}",
            analysis.findings.len(),
            baseline_path.display()
        );
    }
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(content) => Baseline::parse(&content),
        Err(_) => Baseline::default(), // a missing baseline is an empty one
    };

    let (baselined, new): (Vec<_>, Vec<_>) =
        analysis.findings.iter().partition(|d| baseline.contains(d));
    let stale = baseline.stale(&analysis.findings);

    if opts.inventory {
        print!("{}", render_inventory(&analysis.inventory));
        println!();
    }
    for d in &new {
        println!("{d}");
    }
    for key in &stale {
        println!(
            "stale baseline entry `{key}` no longer fires — remove it from {}",
            baseline_path.display()
        );
    }
    let documented = analysis.inventory.iter().filter(|s| s.documented).count();
    println!(
        "centaur-analyze: {} file(s), {} finding(s) ({} new, {} baselined, \
         {} suppressed inline), {} stale baseline entr(ies); unsafe \
         inventory: {} site(s), {} documented",
        analysis.files,
        analysis.findings.len(),
        new.len(),
        baselined.len(),
        analysis.suppressed,
        stale.len(),
        analysis.inventory.len(),
        documented,
    );

    if opts.deny && (!new.is_empty() || !stale.is_empty()) {
        eprintln!(
            "centaur-analyze: --deny: {} new finding(s), {} stale baseline \
             entr(ies)",
            new.len(),
            stale.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
