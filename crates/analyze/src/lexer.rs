//! A small Rust lexer, sufficient for lexical lints.
//!
//! The build environment has no registry access, so `syn` is out of reach;
//! every lint in this crate works off this hand-rolled token stream
//! instead. The lexer's one job is to never be confused about *what is
//! code*: string literals (including raw strings with any `#` count and
//! byte strings), char literals vs lifetimes, and nested block comments
//! must all be classified correctly, or a `"unsafe"` inside a string would
//! become a phantom lint site. It does **not** attempt full fidelity on
//! numeric literals — lints never inspect numbers.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Vec`, ...). Raw identifiers
    /// (`r#type`) carry their unprefixed name.
    Ident,
    /// Numeric literal (loosely scanned; never inspected by lints).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`). The token
    /// text is the *content* between the delimiters, escapes untouched.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`). Text is the content.
    Char,
    /// Lifetime (`'a`, `'static`). Text is the name without the quote.
    Lifetime,
    /// Any other single character of punctuation (`{`, `.`, `!`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when this token is a punctuation character equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block), kept out of the token stream but retained
/// for the SAFETY-proximity check and the suppression syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Line the comment starts on (1-based).
    pub start_line: u32,
    /// Line the comment ends on (== `start_line` for line comments).
    pub end_line: u32,
    /// Text after `//` (line) or between `/*` and `*/` (block), untrimmed.
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unterminated constructs consume to the
/// end of input (the real compiler rejects such files long before this
/// tool runs, so precise recovery is not worth the complexity).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.char_indices().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let text = self.string_literal();
                    self.push(TokenKind::Str, text, line);
                }
                'r' if matches!(self.peek(1), Some('"') | Some('#')) && self.is_raw_string(1) => {
                    self.bump(); // r
                    let text = self.raw_string_literal();
                    self.push(TokenKind::Str, text, line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // b
                    let text = self.string_literal();
                    self.push(TokenKind::Str, text, line);
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_string(2) => {
                    self.bump(); // b
                    self.bump(); // r
                    let text = self.raw_string_literal();
                    self.push(TokenKind::Str, text, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    let text = self.char_literal_body();
                    self.push(TokenKind::Char, text, line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#type: token text is the bare name.
                    self.bump(); // r
                    self.bump(); // #
                    let text = self.ident_body();
                    self.push(TokenKind::Ident, text, line);
                }
                '\'' => self.quote(),
                c if is_ident_start(c) => {
                    let text = self.ident_body();
                    self.push(TokenKind::Ident, text, line);
                }
                c if c.is_ascii_digit() => {
                    let text = self.number_body();
                    self.push(TokenKind::Number, text, line);
                }
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// At an `r` (offset 0), is the run starting at `ahead` a raw-string
    /// opener — zero or more `#` then `"`? Distinguishes `r"…"`/`r#"…"#`
    /// from the raw identifier `r#type`.
    fn is_raw_string(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.bump(); // /
        self.bump(); // /
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            start_line,
            end_line: start_line,
            text,
        });
    }

    /// Block comment; nests, per the Rust grammar.
    fn block_comment(&mut self) {
        let start_line = self.line;
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            start_line,
            end_line: self.line,
            text,
        });
    }

    /// Consumes a `"…"` literal (opening quote still pending); returns the
    /// content with escape sequences left as-is.
    fn string_literal(&mut self) -> String {
        self.bump(); // opening "
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep the escape verbatim; \" must not close the string.
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        text
    }

    /// Consumes `#…#"…"#…#` (the `r`/`br` prefix already consumed);
    /// returns the content. No escapes exist in raw strings; the closing
    /// delimiter is `"` followed by the same number of `#`s as the opener.
    fn raw_string_literal(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let closes = (0..hashes).all(|i| self.peek(i) == Some('#'));
                if closes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
        }
        text
    }

    /// A `'` was seen: char literal or lifetime? `'\…'` and `'x'` are
    /// chars; `'ident` not followed by a closing quote is a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // '
        match self.peek(0) {
            Some('\\') => {
                let text = self.char_literal_body();
                self.push(TokenKind::Char, text, line);
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                let text = self.ident_body();
                self.push(TokenKind::Lifetime, text, line);
            }
            Some(_) => {
                let text = self.char_literal_body();
                self.push(TokenKind::Char, text, line);
            }
            None => self.push(TokenKind::Punct, "'".to_string(), line),
        }
    }

    /// Consumes a char-literal body up to and including the closing `'`
    /// (opening quote already consumed). Handles `'\''`, `'\\'`, `'\u{…}'`.
    fn char_literal_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                c => text.push(c),
            }
        }
        text
    }

    fn ident_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    /// Loose numeric scan: digits/letters/underscores, plus one `.` when
    /// followed by a digit (so `0..n` stays three tokens). Exponent signs
    /// split (`1e-5` → `1e`, `-`, `5`), which no lint cares about.
    fn number_body(&mut self) -> String {
        let mut text = String::new();
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    text.push(c);
                    self.bump();
                }
                Some('.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    text.push('.');
                    self.bump();
                }
                _ => break,
            }
        }
        text
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn keywords_in_strings_are_not_tokens() {
        let src = r#"let s = "unsafe { Vec::new() }"; let t = 1;"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "t"]);
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "unsafe { Vec::new() }");
    }

    #[test]
    fn escaped_quote_does_not_close_a_string() {
        let src = r#"let s = "a \" unsafe \" b"; unsafe {}"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "unsafe"], "only the real unsafe survives");
    }

    #[test]
    fn raw_strings_with_hashes_scan_to_the_matching_close() {
        let src = r###"let s = r#"quote " and // not a comment"#; let x = 2;"###;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, [r#"quote " and // not a comment"#]);
        assert!(
            lexed.comments.is_empty(),
            "the // was inside the raw string"
        );
        assert_eq!(idents(src), ["let", "s", "let", "x"]);
    }

    #[test]
    fn byte_and_byte_raw_strings_lex_as_strings() {
        let src = r##"let a = b"bytes"; let b2 = br#"raw "bytes""#;"##;
        let strs: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, ["bytes", r#"raw "bytes""#]);
    }

    #[test]
    fn nested_block_comments_do_not_leak_code() {
        let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(idents(src), ["fn", "f"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unsafe"));
    }

    #[test]
    fn block_comment_line_span_is_recorded() {
        let src = "/* one\ntwo\nthree */\nunsafe {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        let unsafe_tok = lexed.tokens.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(unsafe_tok.line, 4);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let q = '\\''; let c = '\"'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, [r"\'", "\"", r"\n"]);
        // The '"' char literal must not have opened a string.
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Str));
    }

    #[test]
    fn quote_char_in_literal_does_not_start_lifetime() {
        let src = "let c = 'x'; let l: &'static str = s;";
        let lexed = lex(src);
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Char | TokenKind::Lifetime))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            [
                (TokenKind::Char, "x".to_string()),
                (TokenKind::Lifetime, "static".to_string()),
            ]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn line_comments_capture_text_and_line() {
        let src = "let a = 1; // SAFETY: fine\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert!(lexed.comments[0].text.contains("SAFETY: fine"));
    }

    #[test]
    fn numbers_do_not_swallow_range_operators() {
        let src = "for i in 0..n { x[i] = 1.5; }";
        let lexed = lex(src);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "1.5"]);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the .. survived as two punct tokens");
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line one\nline two\";\nunsafe {}";
        let lexed = lex(src);
        let unsafe_tok = lexed.tokens.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(unsafe_tok.line, 3);
    }
}
