//! CPU-side embedding-gather execution model.
//!
//! Mirrors how the PyTorch/Caffe2 DLRM executes the sparse frontend on a
//! CPU: each embedding table is a separate `SparseLengthsSum` operator,
//! dispatched sequentially by the framework; inside an operator the batch is
//! divided across worker threads; each worker walks its samples' indices,
//! loading 128-byte embedding rows through the cache hierarchy and
//! accumulating them. The per-thread number of in-flight misses is bounded
//! by [`crate::CpuConfig::gather_ilp_window`], which is what keeps the
//! achieved memory bandwidth far below the DRAM peak (Section III-C of the
//! paper).

use crate::config::CpuConfig;
use centaur_dlrm::trace::{InferenceTrace, TableLayout};
use centaur_memsim::{lines_spanned, CacheHierarchy, DramModel, HierarchyStats, Throughput};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of simulating the embedding stage of one batched request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingResult {
    /// End-to-end latency of the embedding stage in nanoseconds.
    pub latency_ns: f64,
    /// Useful embedding bytes gathered.
    pub gathered_bytes: u64,
    /// Number of embedding-row lookups performed.
    pub lookups: u64,
    /// Cache-line requests that reached DRAM.
    pub dram_requests: u64,
    /// Cache statistics accumulated during this stage only.
    pub hierarchy: HierarchyStats,
}

impl EmbeddingResult {
    /// The paper's *effective memory throughput*: useful bytes gathered over
    /// the latency of the embedding stage.
    pub fn effective_throughput(&self) -> Throughput {
        Throughput::new(self.gathered_bytes, self.latency_ns)
    }
}

/// Executes embedding gathers against a cache hierarchy + DRAM model.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmbeddingEngine;

impl EmbeddingEngine {
    /// Simulates the embedding stage of `trace` on the CPU described by
    /// `config`, using (and mutating) the provided cache hierarchy and DRAM
    /// model. Cache *contents* persist across calls so the caller controls
    /// warm-up; statistics are reset at the start of the stage and returned
    /// in the result.
    pub fn execute(
        config: &CpuConfig,
        trace: &InferenceTrace,
        hierarchy: &mut CacheHierarchy,
        dram: &mut DramModel,
    ) -> EmbeddingResult {
        hierarchy.reset_stats();
        let dram_requests_before = dram.stats().requests;

        let layout = trace.layout();
        let row_bytes = trace.config.row_bytes() as u64;
        let batch = trace.batch_size();
        let workers = config.cores.min(batch.max(1));

        let mut stage_start_ns = 0.0_f64;
        for table in 0..trace.config.num_tables {
            // Operator dispatch overhead is serial.
            stage_start_ns += config.per_table_op_overhead_ns;
            let stage_end = Self::execute_table_operator(
                config,
                trace,
                table,
                &layout,
                row_bytes,
                workers,
                stage_start_ns,
                hierarchy,
                dram,
            );
            stage_start_ns = stage_end;
        }

        let lookups = trace.gather.total_lookups() as u64;
        EmbeddingResult {
            latency_ns: stage_start_ns,
            gathered_bytes: trace.gathered_bytes(),
            lookups,
            dram_requests: dram.stats().requests - dram_requests_before,
            hierarchy: hierarchy.stats(),
        }
    }

    /// Simulates one table's `SparseLengthsSum` operator starting at
    /// `start_ns`; returns the operator's completion time.
    ///
    /// Worker threads are advanced in (approximate) global time order so
    /// that the shared DRAM model sees requests with monotonically
    /// reasonable timestamps — otherwise bank-state updates from one
    /// worker's late requests would artificially delay another worker's
    /// early requests.
    #[allow(clippy::too_many_arguments)]
    fn execute_table_operator(
        config: &CpuConfig,
        trace: &InferenceTrace,
        table: usize,
        layout: &TableLayout,
        row_bytes: u64,
        workers: usize,
        start_ns: f64,
        hierarchy: &mut CacheHierarchy,
        dram: &mut DramModel,
    ) -> f64 {
        // Per-worker FIFO of (row, end-of-sample) work items.
        let mut work: Vec<VecDeque<(u64, bool)>> = vec![VecDeque::new(); workers];
        for (sample_idx, sample) in trace.gather.samples.iter().enumerate() {
            let worker = sample_idx % workers;
            let rows = &sample.rows_per_table[table];
            for (i, &row) in rows.iter().enumerate() {
                work[worker].push_back((row, i + 1 == rows.len()));
            }
        }

        let mut worker_time = vec![0.0_f64; workers];
        let mut outstanding: Vec<VecDeque<f64>> = vec![VecDeque::new(); workers];

        // Advance the worker whose local clock is furthest behind.
        while let Some(worker) = (0..workers)
            .filter(|&w| !work[w].is_empty())
            .min_by(|&a, &b| {
                worker_time[a]
                    .partial_cmp(&worker_time[b])
                    .expect("worker times are finite")
            })
        {
            let (row, end_of_sample) = work[worker].pop_front().expect("non-empty queue");
            let mut t = worker_time[worker];

            let addr = layout.address_of(centaur_dlrm::trace::EmbeddingAccess { table, row });
            for line in lines_spanned(addr, row_bytes) {
                let level = hierarchy.access_read(line);
                if level.is_memory() {
                    // Bounded number of misses in flight per thread.
                    if outstanding[worker].len() >= config.gather_ilp_window {
                        if let Some(done) = outstanding[worker].pop_front() {
                            t = t.max(done - start_ns);
                        }
                    }
                    let completion = dram.access(line, start_ns + t);
                    outstanding[worker].push_back(completion);
                } else {
                    t += hierarchy.traversal_latency_ns(level);
                }
            }
            // Address generation + accumulate + loop bookkeeping.
            t += config.per_lookup_overhead_ns;

            // The per-sample reduction cannot retire until every gathered
            // row has arrived.
            if end_of_sample {
                while let Some(done) = outstanding[worker].pop_front() {
                    t = t.max(done - start_ns);
                }
            }
            worker_time[worker] = t;
        }

        let op_elapsed = worker_time.iter().cloned().fold(0.0, f64::max);
        start_ns + op_elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;
    use centaur_memsim::{DramConfig, HierarchyConfig};
    use centaur_workload::{IndexDistribution, RequestGenerator};

    fn simulate(model: PaperModel, batch: usize, seed: u64) -> EmbeddingResult {
        let config = CpuConfig::broadwell_xeon();
        let mut generator =
            RequestGenerator::new(&model.config(), IndexDistribution::Uniform, seed);
        let trace = generator.inference_trace(batch);
        let mut hierarchy = CacheHierarchy::new(&HierarchyConfig::broadwell_like());
        let mut dram = DramModel::new(DramConfig::ddr4_2400());
        EmbeddingEngine::execute(&config, &trace, &mut hierarchy, &mut dram)
    }

    #[test]
    fn latency_positive_and_accounts_all_lookups() {
        let r = simulate(PaperModel::Dlrm1, 4, 1);
        assert!(r.latency_ns > 0.0);
        assert_eq!(r.lookups, 4 * 5 * 20);
        assert_eq!(r.gathered_bytes, 4 * 5 * 20 * 128);
        assert!(r.dram_requests > 0);
    }

    #[test]
    fn latency_grows_with_batch() {
        let small = simulate(PaperModel::Dlrm1, 1, 2);
        let large = simulate(PaperModel::Dlrm1, 64, 2);
        assert!(large.latency_ns > small.latency_ns);
    }

    #[test]
    fn effective_throughput_grows_with_batch() {
        // The paper's key CPU observation (Figure 7a): larger batches improve
        // effective throughput because more gathers overlap.
        let b1 = simulate(PaperModel::Dlrm4, 1, 3).effective_throughput();
        let b32 = simulate(PaperModel::Dlrm4, 32, 3).effective_throughput();
        assert!(
            b32.gigabytes_per_second() > b1.gigabytes_per_second(),
            "batch 32 ({:.2} GB/s) should beat batch 1 ({:.2} GB/s)",
            b32.gigabytes_per_second(),
            b1.gigabytes_per_second()
        );
    }

    #[test]
    fn effective_throughput_is_far_below_peak() {
        // Even at batch 64 the CPU cannot get close to the 77 GB/s DRAM peak.
        let r = simulate(PaperModel::Dlrm4, 64, 4);
        let gbs = r.effective_throughput().gigabytes_per_second();
        let peak = DramConfig::ddr4_2400().peak_bandwidth_gbs();
        assert!(
            gbs < 0.45 * peak,
            "effective {gbs:.1} GB/s vs peak {peak:.1}"
        );
        assert!(
            gbs > 1.0,
            "effective throughput should still be >1 GB/s, got {gbs:.2}"
        );
    }

    #[test]
    fn batch1_small_model_is_overhead_dominated() {
        // DLRM(1) at batch 1 gathers only 100 rows (12.8 KB); per-operator
        // dispatch overheads dominate and the effective throughput collapses
        // well below 1 GB/s.
        let r = simulate(PaperModel::Dlrm1, 1, 5);
        assert!(r.effective_throughput().gigabytes_per_second() < 1.0);
    }

    #[test]
    fn uniform_gathers_mostly_miss_the_llc() {
        let r = simulate(PaperModel::Dlrm4, 16, 6);
        assert!(
            r.hierarchy.llc_miss_rate() > 0.5,
            "sparse gathers should thrash the LLC: {}",
            r.hierarchy.llc_miss_rate()
        );
    }

    #[test]
    fn deterministic_for_same_trace() {
        let a = simulate(PaperModel::Dlrm3, 8, 7);
        let b = simulate(PaperModel::Dlrm3, 8, 7);
        assert_eq!(a.latency_ns, b.latency_ns);
        assert_eq!(a.dram_requests, b.dram_requests);
    }
}
