//! CPU system configuration (the paper's baseline: a Broadwell Xeon
//! E5-2680v4 socket with four DDR4 channels).

use centaur_memsim::{DramConfig, HierarchyConfig};
use serde::{Deserialize, Serialize};

/// Parameters of the CPU-only system model.
///
/// Timing constants fall into three groups:
///
/// * **hardware** — core count, frequency, SIMD width, MSHR count, cache and
///   DRAM geometry;
/// * **software-stack overheads** — per-operator dispatch cost, per-lookup
///   bookkeeping cost and per-request framework cost, which dominate at
///   small batch sizes exactly as the paper observes;
/// * **profiling constants** — retired-instruction estimates used to convert
///   simulated misses into MPKI (Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Human-readable name of the modelled part.
    pub name: String,
    /// Physical cores available to the inference process.
    pub cores: usize,
    /// Core clock in GHz.
    pub frequency_ghz: f64,
    /// Single-precision FLOPs per core per cycle with AVX2 FMA (2 × 8-wide).
    pub simd_flops_per_cycle: f64,
    /// MSHRs per core: the bound on distinct outstanding L1 misses.
    pub mshrs_per_core: usize,
    /// Effective number of embedding-gather loads a single thread keeps in
    /// flight; bounded by MSHRs but usually lower because of the dependent
    /// accumulate in `SparseLengthsSum` and limited out-of-order depth.
    pub gather_ilp_window: usize,
    /// Fraction of peak GEMM throughput reachable on large, cache-resident
    /// GEMMs through the framework's BLAS backend.
    pub gemm_peak_efficiency: f64,
    /// Batch size at which GEMM efficiency reaches half of its asymptote
    /// (models poor utilization of wide SIMD/multicore at tiny batches).
    pub gemm_half_batch: f64,
    /// Framework dispatch overhead per embedding-table operator, in ns.
    pub per_table_op_overhead_ns: f64,
    /// Software bookkeeping per embedding lookup (address generation,
    /// accumulate, loop overhead), in ns, serial per worker thread.
    pub per_lookup_overhead_ns: f64,
    /// Framework dispatch overhead per MLP layer, in ns.
    pub per_layer_overhead_ns: f64,
    /// Fixed per-request framework overhead (input staging, output
    /// post-processing — the paper's "Other"), in ns.
    pub request_overhead_ns: f64,
    /// Additional per-sample "Other" cost, in ns.
    pub per_sample_other_ns: f64,
    /// Estimated retired instructions per embedding lookup (framework +
    /// kernel), used for MPKI.
    pub instructions_per_lookup: f64,
    /// Estimated retired instructions per MLP FLOP (AVX2 amortized), used
    /// for MPKI.
    pub instructions_per_flop: f64,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// DRAM organization and timing.
    pub dram: DramConfig,
}

impl CpuConfig {
    /// The paper's baseline: Broadwell Xeon E5-2680v4 (14 cores, 2.4 GHz,
    /// 35 MiB LLC) with 4 channels of DDR4-2400 (~77 GB/s).
    pub fn broadwell_xeon() -> Self {
        CpuConfig {
            name: "Intel Xeon E5-2680v4 (Broadwell)".to_string(),
            cores: 14,
            frequency_ghz: 2.4,
            simd_flops_per_cycle: 16.0,
            mshrs_per_core: 10,
            gather_ilp_window: 5,
            gemm_peak_efficiency: 0.40,
            gemm_half_batch: 64.0,
            per_table_op_overhead_ns: 2_000.0,
            per_lookup_overhead_ns: 85.0,
            per_layer_overhead_ns: 5_000.0,
            request_overhead_ns: 15_000.0,
            per_sample_other_ns: 250.0,
            instructions_per_lookup: 450.0,
            instructions_per_flop: 0.2,
            hierarchy: HierarchyConfig::broadwell_like(),
            dram: DramConfig::ddr4_2400(),
        }
    }

    /// Peak single-precision throughput of the whole socket in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.frequency_ghz * self.simd_flops_per_cycle
    }

    /// Effective GEMM throughput in GFLOP/s for a given batch size.
    ///
    /// Small batches cannot fill the SIMD lanes or all cores, so the
    /// efficiency ramps with batch following a saturating curve.
    pub fn effective_gemm_gflops(&self, batch: usize) -> f64 {
        let batch = batch.max(1) as f64;
        let utilization = batch / (batch + self.gemm_half_batch);
        // Even batch-1 GEMV achieves a sliver of peak.
        let floor = 0.025;
        self.peak_gflops() * self.gemm_peak_efficiency * (floor + (1.0 - floor) * utilization)
    }

    /// Total MSHR-bounded outstanding misses across the socket.
    pub fn total_mshrs(&self) -> usize {
        self.cores * self.mshrs_per_core
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::broadwell_xeon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_peak_flops_is_hundreds_of_gflops() {
        let c = CpuConfig::broadwell_xeon();
        let peak = c.peak_gflops();
        assert!(peak > 400.0 && peak < 700.0, "peak = {peak}");
        assert_eq!(c.total_mshrs(), 140);
    }

    #[test]
    fn effective_gemm_grows_with_batch_and_saturates() {
        let c = CpuConfig::broadwell_xeon();
        let b1 = c.effective_gemm_gflops(1);
        let b16 = c.effective_gemm_gflops(16);
        let b128 = c.effective_gemm_gflops(128);
        let b1024 = c.effective_gemm_gflops(1024);
        assert!(b1 < b16 && b16 < b128 && b128 < b1024);
        assert!(b1024 <= c.peak_gflops() * c.gemm_peak_efficiency + 1e-9);
        // Batch-1 dense work is far below peak (latency-bound GEMV).
        assert!(b1 < 0.15 * c.peak_gflops());
    }

    #[test]
    fn dram_peak_matches_paper() {
        let c = CpuConfig::broadwell_xeon();
        assert!((c.dram.peak_bandwidth_gbs() - 77.0).abs() < 1.0);
    }

    #[test]
    fn default_is_broadwell() {
        assert_eq!(CpuConfig::default(), CpuConfig::broadwell_xeon());
    }

    #[test]
    fn gather_window_no_larger_than_mshrs() {
        let c = CpuConfig::broadwell_xeon();
        assert!(c.gather_ilp_window <= c.mshrs_per_core);
    }
}
