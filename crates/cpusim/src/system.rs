//! End-to-end CPU-only inference timing (the paper's baseline system).

use crate::config::CpuConfig;
use crate::embedding::{EmbeddingEngine, EmbeddingResult};
use crate::gemm::{DenseEngine, DenseResult};
use centaur_dlrm::trace::InferenceTrace;
use centaur_memsim::{CacheHierarchy, DramModel, Throughput};
use serde::{Deserialize, Serialize};

/// End-to-end latency split of a CPU-only inference, matching the Figure 5
/// breakdown (EMB / MLP / Other).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Embedding gather + reduction time in nanoseconds.
    pub embedding_ns: f64,
    /// MLP + feature-interaction time in nanoseconds.
    pub mlp_ns: f64,
    /// Everything else (framework, staging, post-processing) in nanoseconds.
    pub other_ns: f64,
}

impl LatencyBreakdown {
    /// Total end-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.embedding_ns + self.mlp_ns + self.other_ns
    }

    /// Fraction of the total spent in embedding layers.
    pub fn embedding_fraction(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            0.0
        } else {
            self.embedding_ns / self.total_ns()
        }
    }

    /// Fraction of the total spent in MLP layers.
    pub fn mlp_fraction(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            0.0
        } else {
            self.mlp_ns / self.total_ns()
        }
    }

    /// Fraction of the total spent outside embedding and MLP layers.
    pub fn other_fraction(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            0.0
        } else {
            self.other_ns / self.total_ns()
        }
    }
}

/// Result of one simulated CPU-only batched inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuInferenceResult {
    /// Batch size of the request.
    pub batch: usize,
    /// EMB / MLP / Other latency split.
    pub breakdown: LatencyBreakdown,
    /// Details of the embedding stage.
    pub embedding: EmbeddingResult,
    /// Details of the dense stage.
    pub dense: DenseResult,
}

impl CpuInferenceResult {
    /// End-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }

    /// The paper's effective memory throughput for the embedding stage.
    pub fn effective_embedding_throughput(&self) -> Throughput {
        self.embedding.effective_throughput()
    }

    /// Requests per second this latency sustains (single request in
    /// flight).
    pub fn throughput_qps(&self) -> f64 {
        1e9 / self.total_ns()
    }
}

/// The CPU-only system: a socket, its cache hierarchy and its DRAM.
///
/// Cache and DRAM state persist across [`CpuSystem::simulate`] calls so a
/// sequence of requests naturally warms the hierarchy, mirroring how the
/// paper measures after warm-up.
#[derive(Debug, Clone)]
pub struct CpuSystem {
    config: CpuConfig,
    hierarchy: CacheHierarchy,
    dram: DramModel,
}

impl CpuSystem {
    /// Creates a cold CPU system.
    pub fn new(config: CpuConfig) -> Self {
        let hierarchy = CacheHierarchy::new(&config.hierarchy);
        let dram = DramModel::new(config.dram);
        CpuSystem {
            config,
            hierarchy,
            dram,
        }
    }

    /// Creates the paper's baseline (Broadwell Xeon) system.
    pub fn broadwell() -> Self {
        CpuSystem::new(CpuConfig::broadwell_xeon())
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Warms the cache hierarchy by replaying a request without recording a
    /// result.
    pub fn warm_up(&mut self, trace: &InferenceTrace) {
        let _ = EmbeddingEngine::execute(&self.config, trace, &mut self.hierarchy, &mut self.dram);
        self.dram.reset();
    }

    /// Simulates one batched inference and returns its latency breakdown.
    pub fn simulate(&mut self, trace: &InferenceTrace) -> CpuInferenceResult {
        let embedding =
            EmbeddingEngine::execute(&self.config, trace, &mut self.hierarchy, &mut self.dram);
        let batch = trace.batch_size();
        let dense = DenseEngine::execute(&self.config, &trace.config, batch);
        let other_ns =
            self.config.request_overhead_ns + self.config.per_sample_other_ns * batch as f64;
        let breakdown = LatencyBreakdown {
            embedding_ns: embedding.latency_ns,
            mlp_ns: dense.latency_ns,
            other_ns,
        };
        CpuInferenceResult {
            batch,
            breakdown,
            embedding,
            dense,
        }
    }

    /// Convenience: warm up with `warmup` then measure `trace`.
    pub fn simulate_warm(
        &mut self,
        warmup: &InferenceTrace,
        trace: &InferenceTrace,
    ) -> CpuInferenceResult {
        self.warm_up(warmup);
        self.simulate(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    fn run(model: PaperModel, batch: usize) -> CpuInferenceResult {
        let config = model.config();
        let mut warm_gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 100);
        let mut gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 200);
        let mut system = CpuSystem::broadwell();
        system.simulate_warm(
            &warm_gen.inference_trace(batch),
            &gen.inference_trace(batch),
        )
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        let r = run(PaperModel::Dlrm1, 16);
        assert!(r.breakdown.embedding_ns > 0.0);
        assert!(r.breakdown.mlp_ns > 0.0);
        assert!(r.breakdown.other_ns > 0.0);
        let sum = r.breakdown.embedding_fraction()
            + r.breakdown.mlp_fraction()
            + r.breakdown.other_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.total_ns() > 0.0);
        assert!(r.throughput_qps() > 0.0);
    }

    #[test]
    fn embedding_dominates_for_lookup_heavy_models() {
        // Figure 5: models with many tables/lookups are embedding-bound,
        // especially at larger batch sizes.
        let r = run(PaperModel::Dlrm4, 64);
        assert!(
            r.breakdown.embedding_fraction() > 0.5,
            "EMB fraction = {:.2}",
            r.breakdown.embedding_fraction()
        );
    }

    #[test]
    fn mlp_heavy_model_is_not_embedding_bound() {
        // DLRM(6) is configured with a tiny embedding stage and a heavyweight
        // MLP; its MLP share must exceed its embedding share.
        let r = run(PaperModel::Dlrm6, 16);
        assert!(
            r.breakdown.mlp_fraction() > r.breakdown.embedding_fraction(),
            "MLP {:.2} vs EMB {:.2}",
            r.breakdown.mlp_fraction(),
            r.breakdown.embedding_fraction()
        );
    }

    #[test]
    fn latency_increases_with_batch() {
        let small = run(PaperModel::Dlrm2, 1);
        let large = run(PaperModel::Dlrm2, 128);
        assert!(large.total_ns() > small.total_ns());
        // But sublinearly thanks to batching of overheads.
        assert!(large.total_ns() < 128.0 * small.total_ns());
    }

    #[test]
    fn embedding_fraction_grows_with_batch_for_emb_bound_models() {
        let small = run(PaperModel::Dlrm3, 1);
        let large = run(PaperModel::Dlrm3, 128);
        assert!(large.breakdown.embedding_fraction() >= small.breakdown.embedding_fraction());
    }

    #[test]
    fn repeated_simulation_with_same_state_is_deterministic() {
        let config = PaperModel::Dlrm1.config();
        let mut gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 7);
        let trace = gen.inference_trace(8);
        let mut a = CpuSystem::broadwell();
        let mut b = CpuSystem::broadwell();
        let ra = a.simulate(&trace);
        let rb = b.simulate(&trace);
        assert_eq!(ra, rb);
    }
}
