//! Cache-behaviour profiling of the embedding and MLP stages (Figure 6 of
//! the paper: LLC miss rate and MPKI per layer type).

use crate::config::CpuConfig;
use crate::gemm::DenseEngine;
use centaur_dlrm::trace::InferenceTrace;
use centaur_memsim::{
    lines_spanned, AccessKind, CacheHierarchy, HierarchyStats, SetAssociativeCache,
    CACHE_LINE_BYTES,
};
use serde::{Deserialize, Serialize};

/// Cache statistics of one layer type (embedding or MLP), in the form the
/// paper reports them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Last-level-cache miss rate in `[0, 1]`.
    pub llc_miss_rate: f64,
    /// LLC misses per thousand retired instructions.
    pub llc_mpki: f64,
    /// Estimated retired instructions for the stage.
    pub instructions: u64,
    /// Raw per-level cache statistics.
    pub stats: HierarchyStats,
}

/// Combined embedding/MLP cache profile of one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheProfile {
    /// Embedding-layer profile.
    pub embedding: LayerProfile,
    /// MLP-layer profile.
    pub mlp: LayerProfile,
}

/// Profiles cache behaviour by trace replay (no timing).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheProfiler;

impl CacheProfiler {
    /// Profiles the embedding and MLP stages of `trace`.
    ///
    /// The hierarchy is warmed with `warmup_trace` (a different request of
    /// the same shape — the paper measures after "sufficiently warming up
    /// the CPU's cache hierarchy") before the measured replay.
    pub fn profile(
        config: &CpuConfig,
        trace: &InferenceTrace,
        warmup_trace: &InferenceTrace,
    ) -> CacheProfile {
        CacheProfile {
            embedding: Self::profile_embedding(config, trace, warmup_trace),
            mlp: Self::profile_mlp(config, trace),
        }
    }

    fn replay_embedding(trace: &InferenceTrace, hierarchy: &mut CacheHierarchy) {
        let layout = trace.layout();
        let row_bytes = trace.config.row_bytes() as u64;
        for access in trace.gather.iter_accesses() {
            let addr = layout.address_of(access);
            for line in lines_spanned(addr, row_bytes) {
                hierarchy.access_read(line);
            }
        }
    }

    fn profile_embedding(
        config: &CpuConfig,
        trace: &InferenceTrace,
        warmup_trace: &InferenceTrace,
    ) -> LayerProfile {
        let mut hierarchy = CacheHierarchy::new(&config.hierarchy);
        // Steady-state serving leaves the LLC populated with whatever
        // fraction of the embedding tables fits. Model that by installing a
        // sample of each table (its leading rows — gathers are uniform, so
        // any sample of the right size gives the same hit probability) up to
        // ~80 % of LLC capacity, then replaying one extra request.
        let layout = trace.layout();
        let row_bytes = trace.config.row_bytes() as u64;
        let resident_budget = (config.hierarchy.llc.size_bytes as f64 * 0.8) as u64;
        let per_table_budget = resident_budget / trace.config.num_tables as u64;
        let resident_rows = (per_table_budget / row_bytes).min(trace.config.rows_per_table);
        for table in 0..trace.config.num_tables {
            for row in 0..resident_rows {
                let addr = layout.address_of(centaur_dlrm::trace::EmbeddingAccess { table, row });
                for line in lines_spanned(addr, row_bytes) {
                    hierarchy.install_all_levels(line);
                }
            }
        }
        // Warm-up pass with a *different* request mixes in recently-gathered
        // rows, as steady-state serving would.
        Self::replay_embedding(warmup_trace, &mut hierarchy);
        hierarchy.reset_stats();
        Self::replay_embedding(trace, &mut hierarchy);
        let stats = hierarchy.stats();
        let instructions =
            (trace.gather.total_lookups() as f64 * config.instructions_per_lookup) as u64;
        LayerProfile {
            llc_miss_rate: stats.llc_miss_rate(),
            llc_mpki: stats.llc_mpki(instructions),
            instructions,
            stats,
        }
    }

    fn profile_mlp(config: &CpuConfig, trace: &InferenceTrace) -> LayerProfile {
        let model = &trace.config;
        let batch = trace.batch_size().max(1);
        // The MLP working set is studied at the shared-LLC level: each core's
        // tile streams the (persistent, LLC-resident) weights and produces
        // fresh activations, so LLC traffic is dominated by weight reads that
        // hit plus a small number of cold activation lines.
        let mut llc = SetAssociativeCache::new(config.hierarchy.llc);

        // Weight base addresses live below the embedding tables in the
        // simulated address space.
        let weight_base = 0x4000_0000u64;
        let act_base = 0x7000_0000u64;

        let mut layer_dims: Vec<(usize, usize)> = Vec::new();
        for dims in [model.bottom_mlp_dims(), model.top_mlp_dims()] {
            for w in dims.windows(2) {
                layer_dims.push((w[0], w[1]));
            }
        }

        // Weights are persistent across requests and fit comfortably in the
        // LLC for every Table I model; install them as resident.
        let mut offset = weight_base;
        let mut weight_addrs: Vec<(u64, u64)> = Vec::new();
        for &(m, n) in &layer_dims {
            let bytes = (m * n + n) as u64 * 4;
            weight_addrs.push((offset, bytes));
            for line in lines_spanned(offset, bytes) {
                llc.install(line);
            }
            offset += bytes.div_ceil(4096) * 4096;
        }

        // One replay pass: tiles of up to 32 batch rows stream the weights
        // from the LLC while activations are produced and consumed layer by
        // layer. `first_input_base` is where the request's incoming data
        // (dense features / interaction output) lands.
        let tile_rows = 32usize;
        let tiles = batch.div_ceil(tile_rows);
        let replay_pass = |llc: &mut SetAssociativeCache, first_input_base: u64| {
            let mut act_offset = act_base;
            for (layer, &(m, n)) in layer_dims.iter().enumerate() {
                let (w_addr, w_bytes) = weight_addrs[layer];
                let in_bytes = (m * batch.min(tile_rows)) as u64 * 4;
                let out_bytes = (n * batch.min(tile_rows)) as u64 * 4;
                let in_addr = if layer == 0 {
                    first_input_base
                } else {
                    act_offset
                };
                let out_addr = act_offset + in_bytes;
                for _tile in 0..tiles {
                    for line in lines_spanned(w_addr, w_bytes) {
                        llc.access(line, AccessKind::Read);
                    }
                    for line in lines_spanned(in_addr, in_bytes) {
                        llc.access(line, AccessKind::Read);
                    }
                    for line in lines_spanned(out_addr, out_bytes) {
                        llc.access(line, AccessKind::Write);
                    }
                }
                act_offset += ((in_bytes + out_bytes) / CACHE_LINE_BYTES + 2) * CACHE_LINE_BYTES;
            }
        };

        // Warm-up pass (previous request): activation buffers are reused by
        // the framework allocator, so in steady state they are resident too.
        replay_pass(&mut llc, act_base + (1 << 22));
        llc.reset_stats();
        // Measured pass: only the request's fresh input data is cold.
        replay_pass(&mut llc, act_base + (1 << 23));

        let llc_stats = *llc.stats();
        let stats = HierarchyStats {
            llc: llc_stats,
            ..HierarchyStats::default()
        };
        let flops = model.dense_flops_per_sample() * batch as u64;
        let instructions = (flops as f64 * config.instructions_per_flop) as u64
            + DenseEngine::operator_count(model) as u64 * 2_000;
        LayerProfile {
            llc_miss_rate: stats.llc_miss_rate(),
            llc_mpki: stats.llc_mpki(instructions),
            instructions,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    fn profile(model: PaperModel, batch: usize) -> CacheProfile {
        let config = CpuConfig::broadwell_xeon();
        let mut gen_a = RequestGenerator::new(&model.config(), IndexDistribution::Uniform, 10);
        let mut gen_b = RequestGenerator::new(&model.config(), IndexDistribution::Uniform, 20);
        let trace = gen_a.inference_trace(batch);
        let warmup = gen_b.inference_trace(batch);
        CacheProfiler::profile(&config, &trace, &warmup)
    }

    #[test]
    fn embedding_misses_dominate_mlp_misses() {
        // The central claim of Figure 6: EMB layers have high LLC miss rates
        // and MPKI, MLP layers do not.
        let p = profile(PaperModel::Dlrm1, 16);
        assert!(p.embedding.llc_miss_rate > p.mlp.llc_miss_rate);
        assert!(p.embedding.llc_mpki > p.mlp.llc_mpki);
    }

    #[test]
    fn mlp_llc_miss_rate_is_low() {
        for model in [PaperModel::Dlrm1, PaperModel::Dlrm6] {
            let p = profile(model, 32);
            assert!(
                p.mlp.llc_miss_rate < 0.20,
                "{model}: MLP LLC miss rate {:.2} should be <20%",
                p.mlp.llc_miss_rate
            );
        }
    }

    #[test]
    fn embedding_miss_rate_high_for_large_tables() {
        // DLRM(5) has 3.2 GB of embeddings: essentially nothing is resident.
        let p = profile(PaperModel::Dlrm5, 16);
        assert!(p.embedding.llc_miss_rate > 0.8);
    }

    #[test]
    fn smaller_tables_have_more_residency() {
        // 128 MB of tables (DLRM(1)) partially fits in the 35 MB LLC after
        // warm-up, so its miss rate is lower than the 3.2 GB DLRM(5).
        let small = profile(PaperModel::Dlrm1, 16);
        let large = profile(PaperModel::Dlrm5, 16);
        assert!(small.embedding.llc_miss_rate < large.embedding.llc_miss_rate);
    }

    #[test]
    fn mpki_values_are_in_plausible_ranges() {
        let p = profile(PaperModel::Dlrm4, 32);
        // EMB MPKI in the units-of-misses-per-kilo-instruction range.
        assert!(p.embedding.llc_mpki > 0.5 && p.embedding.llc_mpki < 50.0);
        // MLP MPKI near zero.
        assert!(p.mlp.llc_mpki < 1.0);
        assert!(p.embedding.instructions > 0);
        assert!(p.mlp.instructions > 0);
    }
}
