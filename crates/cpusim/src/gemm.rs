//! CPU dense-layer (GEMM) timing model.
//!
//! MLP weights in the studied models are far smaller than the LLC, so the
//! dense layers are compute-bound on the CPU (Figure 6 shows <20 % LLC miss
//! rates for MLP). The model therefore uses a batch-dependent roofline on
//! the socket's AVX2 FMA throughput plus per-operator framework dispatch
//! overhead.

use crate::config::CpuConfig;
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::kernel::{self, KernelBackend};
use centaur_dlrm::tensor::gemm_flops;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Result of simulating the dense (MLP + feature interaction) stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenseResult {
    /// Latency of the dense stage in nanoseconds.
    pub latency_ns: f64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Number of framework operators dispatched (layers + interaction +
    /// sigmoid).
    pub operators: usize,
    /// Achieved GFLOP/s (excluding dispatch overhead).
    pub achieved_gflops: f64,
}

/// CPU GEMM/MLP timing model.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseEngine;

impl DenseEngine {
    /// Number of framework operators the dense stage dispatches for one
    /// request: every MLP layer, the feature interaction and the sigmoid.
    pub fn operator_count(model: &ModelConfig) -> usize {
        let bottom_layers = model.bottom_mlp_dims().len() - 1;
        let top_layers = model.top_mlp_dims().len() - 1;
        bottom_layers + top_layers + 2
    }

    /// Time to execute a GEMM of `flops` floating-point operations at the
    /// batch-dependent effective throughput.
    pub fn gemm_time_ns(config: &CpuConfig, flops: u64, batch: usize) -> f64 {
        let gflops = config.effective_gemm_gflops(batch);
        flops as f64 / gflops
    }

    /// Measures the GFLOP/s this host actually achieves on an `[m, k] ×
    /// [k, n]` `f32` GEMM with the given kernel backend, by running the real
    /// kernel from `centaur-dlrm` — the hook that grounds the analytical
    /// roofline in measured numbers (and quantifies the naive-vs-blocked
    /// gap on real hardware).
    ///
    /// Runs one warm-up iteration plus `reps` timed iterations and reports
    /// the mean. Deterministic inputs; `reps` is clamped to at least 1.
    pub fn measure_kernel_gflops(
        backend: KernelBackend,
        m: usize,
        k: usize,
        n: usize,
        reps: u32,
    ) -> f64 {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31) % 17) as f32 * 0.125 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 7) % 13) as f32 * 0.25 - 1.5)
            .collect();
        let mut out = vec![0.0f32; m * n];
        let mut ws = centaur_dlrm::kernel::Workspace::new();
        kernel::gemm_into(backend, &a, &b, &mut out, m, k, n, &mut ws);
        let reps = reps.max(1);
        let start = Instant::now();
        for _ in 0..reps {
            kernel::gemm_into(backend, &a, &b, &mut out, m, k, n, &mut ws);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / reps as f64;
        // Keep the result observable so the kernel cannot be optimized out.
        assert!(out.iter().all(|v| v.is_finite()));
        if ns > 0.0 {
            (gemm_flops(m, n, k) as f64) / ns
        } else {
            0.0
        }
    }

    /// Simulates the dense stage (bottom MLP, feature interaction, top MLP,
    /// sigmoid) of one batched request.
    pub fn execute(config: &CpuConfig, model: &ModelConfig, batch: usize) -> DenseResult {
        let flops = model.dense_flops_per_sample() * batch.max(1) as u64;
        let compute_ns = Self::gemm_time_ns(config, flops, batch);
        let operators = Self::operator_count(model);
        let dispatch_ns = operators as f64 * config.per_layer_overhead_ns;
        let latency_ns = compute_ns + dispatch_ns;
        DenseResult {
            latency_ns,
            flops,
            operators,
            achieved_gflops: if compute_ns > 0.0 {
                flops as f64 / compute_ns
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;

    #[test]
    fn operator_count_matches_layer_structure() {
        let light = PaperModel::Dlrm1.config();
        // bottom: 13-128-64-32 = 3 layers; top: in-64-32-1 = 3 layers; +2.
        assert_eq!(DenseEngine::operator_count(&light), 8);
        let heavy = PaperModel::Dlrm6.config();
        assert!(DenseEngine::operator_count(&heavy) > DenseEngine::operator_count(&light));
    }

    #[test]
    fn latency_grows_with_batch_but_sublinearly() {
        let cfg = CpuConfig::broadwell_xeon();
        let model = PaperModel::Dlrm1.config();
        let b1 = DenseEngine::execute(&cfg, &model, 1);
        let b128 = DenseEngine::execute(&cfg, &model, 128);
        assert!(b128.latency_ns > b1.latency_ns);
        // Weight reuse across the batch means 128x the work takes far less
        // than 128x the time (the paper's Section III-A observation).
        assert!(b128.latency_ns < 64.0 * b1.latency_ns);
        assert_eq!(b128.flops, 128 * b1.flops);
    }

    #[test]
    fn heavy_mlp_model_is_slower() {
        let cfg = CpuConfig::broadwell_xeon();
        let light = DenseEngine::execute(&cfg, &PaperModel::Dlrm1.config(), 16);
        let heavy = DenseEngine::execute(&cfg, &PaperModel::Dlrm6.config(), 16);
        assert!(heavy.latency_ns > light.latency_ns);
        assert!(heavy.flops > light.flops);
    }

    #[test]
    fn achieved_gflops_below_configured_peak() {
        let cfg = CpuConfig::broadwell_xeon();
        for batch in [1, 16, 128] {
            let r = DenseEngine::execute(&cfg, &PaperModel::Dlrm6.config(), batch);
            assert!(r.achieved_gflops <= cfg.peak_gflops());
            assert!(r.achieved_gflops > 0.0);
        }
    }

    #[test]
    fn measured_kernel_gflops_is_positive_and_finite() {
        for backend in KernelBackend::all() {
            let gflops = DenseEngine::measure_kernel_gflops(backend, 16, 64, 32, 2);
            assert!(gflops.is_finite() && gflops > 0.0, "{backend:?}: {gflops}");
        }
    }

    #[test]
    fn gemm_time_scales_inversely_with_batch_efficiency() {
        let cfg = CpuConfig::broadwell_xeon();
        let t1 = DenseEngine::gemm_time_ns(&cfg, 1_000_000, 1);
        let t128 = DenseEngine::gemm_time_ns(&cfg, 1_000_000, 128);
        assert!(t1 > t128);
    }
}
