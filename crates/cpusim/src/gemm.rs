//! CPU dense-layer (GEMM) timing model.
//!
//! MLP weights in the studied models are far smaller than the LLC, so the
//! dense layers are compute-bound on the CPU (Figure 6 shows <20 % LLC miss
//! rates for MLP). The model therefore uses a batch-dependent roofline on
//! the socket's AVX2 FMA throughput plus per-operator framework dispatch
//! overhead.

use crate::config::CpuConfig;
use centaur_dlrm::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Result of simulating the dense (MLP + feature interaction) stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenseResult {
    /// Latency of the dense stage in nanoseconds.
    pub latency_ns: f64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Number of framework operators dispatched (layers + interaction +
    /// sigmoid).
    pub operators: usize,
    /// Achieved GFLOP/s (excluding dispatch overhead).
    pub achieved_gflops: f64,
}

/// CPU GEMM/MLP timing model.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseEngine;

impl DenseEngine {
    /// Number of framework operators the dense stage dispatches for one
    /// request: every MLP layer, the feature interaction and the sigmoid.
    pub fn operator_count(model: &ModelConfig) -> usize {
        let bottom_layers = model.bottom_mlp_dims().len() - 1;
        let top_layers = model.top_mlp_dims().len() - 1;
        bottom_layers + top_layers + 2
    }

    /// Time to execute a GEMM of `flops` floating-point operations at the
    /// batch-dependent effective throughput.
    pub fn gemm_time_ns(config: &CpuConfig, flops: u64, batch: usize) -> f64 {
        let gflops = config.effective_gemm_gflops(batch);
        flops as f64 / gflops
    }

    /// Simulates the dense stage (bottom MLP, feature interaction, top MLP,
    /// sigmoid) of one batched request.
    pub fn execute(config: &CpuConfig, model: &ModelConfig, batch: usize) -> DenseResult {
        let flops = model.dense_flops_per_sample() * batch.max(1) as u64;
        let compute_ns = Self::gemm_time_ns(config, flops, batch);
        let operators = Self::operator_count(model);
        let dispatch_ns = operators as f64 * config.per_layer_overhead_ns;
        let latency_ns = compute_ns + dispatch_ns;
        DenseResult {
            latency_ns,
            flops,
            operators,
            achieved_gflops: if compute_ns > 0.0 {
                flops as f64 / compute_ns
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;

    #[test]
    fn operator_count_matches_layer_structure() {
        let light = PaperModel::Dlrm1.config();
        // bottom: 13-128-64-32 = 3 layers; top: in-64-32-1 = 3 layers; +2.
        assert_eq!(DenseEngine::operator_count(&light), 8);
        let heavy = PaperModel::Dlrm6.config();
        assert!(DenseEngine::operator_count(&heavy) > DenseEngine::operator_count(&light));
    }

    #[test]
    fn latency_grows_with_batch_but_sublinearly() {
        let cfg = CpuConfig::broadwell_xeon();
        let model = PaperModel::Dlrm1.config();
        let b1 = DenseEngine::execute(&cfg, &model, 1);
        let b128 = DenseEngine::execute(&cfg, &model, 128);
        assert!(b128.latency_ns > b1.latency_ns);
        // Weight reuse across the batch means 128x the work takes far less
        // than 128x the time (the paper's Section III-A observation).
        assert!(b128.latency_ns < 64.0 * b1.latency_ns);
        assert_eq!(b128.flops, 128 * b1.flops);
    }

    #[test]
    fn heavy_mlp_model_is_slower() {
        let cfg = CpuConfig::broadwell_xeon();
        let light = DenseEngine::execute(&cfg, &PaperModel::Dlrm1.config(), 16);
        let heavy = DenseEngine::execute(&cfg, &PaperModel::Dlrm6.config(), 16);
        assert!(heavy.latency_ns > light.latency_ns);
        assert!(heavy.flops > light.flops);
    }

    #[test]
    fn achieved_gflops_below_configured_peak() {
        let cfg = CpuConfig::broadwell_xeon();
        for batch in [1, 16, 128] {
            let r = DenseEngine::execute(&cfg, &PaperModel::Dlrm6.config(), batch);
            assert!(r.achieved_gflops <= cfg.peak_gflops());
            assert!(r.achieved_gflops > 0.0);
        }
    }

    #[test]
    fn gemm_time_scales_inversely_with_batch_efficiency() {
        let cfg = CpuConfig::broadwell_xeon();
        let t1 = DenseEngine::gemm_time_ns(&cfg, 1_000_000, 1);
        let t128 = DenseEngine::gemm_time_ns(&cfg, 1_000_000, 128);
        assert!(t1 > t128);
    }
}
