//! # centaur-cpusim
//!
//! Timing model of the paper's baseline system: **CPU-only** recommendation
//! inference on a Broadwell Xeon socket. The model reproduces the
//! characterization of Section III — embedding gathers bottlenecked by
//! limited memory-level parallelism and framework overhead, MLPs
//! compute-bound on the socket's AVX throughput — and produces the EMB /
//! MLP / Other latency breakdown of Figure 5, the cache profile of
//! Figure 6 and the effective-throughput curves of Figure 7.
//!
//! ```
//! use centaur_cpusim::CpuSystem;
//! use centaur_dlrm::PaperModel;
//! use centaur_workload::{IndexDistribution, RequestGenerator};
//!
//! let model = PaperModel::Dlrm1.config();
//! let mut generator = RequestGenerator::new(&model, IndexDistribution::Uniform, 1);
//! let trace = generator.inference_trace(16);
//!
//! let mut system = CpuSystem::broadwell();
//! let result = system.simulate(&trace);
//! assert!(result.total_ns() > 0.0);
//! println!(
//!     "embedding share = {:.0}%",
//!     result.breakdown.embedding_fraction() * 100.0
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod embedding;
pub mod gemm;
pub mod profile;
pub mod system;

pub use config::CpuConfig;
pub use embedding::{EmbeddingEngine, EmbeddingResult};
pub use gemm::{DenseEngine, DenseResult};
pub use profile::{CacheProfile, CacheProfiler, LayerProfile};
pub use system::{CpuInferenceResult, CpuSystem, LatencyBreakdown};
